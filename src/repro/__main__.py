"""``python -m repro`` — the command-line front end of the compilation API.

Subcommands:

* ``compile``  — compile one or more s-expression sources and print the
  circuit statistics and per-stage pipeline trace (optionally the SEAL C++);
* ``run``      — compile, execute on a simulated BFV backend and verify
  against the plaintext reference;
* ``run-batch`` — compile once, execute a whole batch of input sets on a
  backend (the vector VM serves the batch in one tape pass) and verify each;
* ``list-compilers`` — show every registered compiler configuration;
* ``list-backends``  — show every registered execution backend;
* ``workloads``      — list the registered end-to-end workloads, or run one
  (``workloads dot-product``) as a verified batch on its defaults;
* ``bench-workloads`` — benchmark the workloads on both backends (direct vs
  server path, bit-identical) plus a mixed-traffic coalescing pass;
* ``serve``   — run the job-orchestration server over a ``--state-dir``
  (persistent queue; coalesces queued executions sharing a circuit);
* ``submit``  — queue a compile/execute job into a ``--state-dir`` (picked
  up by the serving process, or by a later ``serve --drain``);
* ``jobs``    — list the jobs of a ``--state-dir`` with their status
  (``--status`` accepts a comma-separated list, e.g. ``shed,failed``);
* ``metrics`` — print the server's latest telemetry snapshot; ``--watch``
  re-reads it on an interval and ``--delta`` shows rates between snapshots
  (both keyed off the snapshot sequence number);
* ``trace``   — work with the span traces of a ``--trace`` serving run:
  ``trace export`` writes a Chrome/Perfetto-loadable trace JSON and
  ``trace report`` prints the per-stage latency/self-time rollup;
* ``top``     — live ops console over the metrics snapshot: queue depth,
  SLO compliance, coalescing rate and per-stage p50/p99;
* ``study``   — ablation studies on the job server: ``study run`` executes
  a baseline + one-component-off matrix with replicates, ``study resume``
  finishes an interrupted study without re-running finished replicates,
  ``study report`` re-analyses a study directory and ``study components``
  lists the ablatable components.

Sources are s-expressions in the paper's textual IR, e.g.::

    python -m repro compile "(* (+ a b) (+ c d))" --compiler greedy
    python -m repro run "(+ (* a b) c)" --inputs a=2,b=3,c=4
    python -m repro run "(+ (* a b) c)" --backend vector-vm
    python -m repro run-batch "(* (+ a b) (+ c d))" --batch 32 --backend vector-vm
    python -m repro compile @kernel.sexp --compiler coyote --cache-dir .cache
    python -m repro list-compilers
    python -m repro submit "(+ (* a b) c)" --state-dir .state --seed 3
    python -m repro serve --state-dir .state --drain
    python -m repro jobs --state-dir .state --status shed,failed
    python -m repro metrics --state-dir .state
    python -m repro metrics --state-dir .state --watch --interval 2
    python -m repro serve --state-dir .state --drain --trace
    python -m repro trace report --state-dir .state
    python -m repro trace export --state-dir .state --out trace.json
    python -m repro top --state-dir .state --watch
    python -m repro study components
    python -m repro study run --study-dir .study --replicates 3
    python -m repro study resume --study-dir .study
    python -m repro study report --study-dir .study

``@path`` reads a source from a file and ``-`` from stdin.  ``--option
key=value`` forwards factory options to the registry (values are parsed as
Python literals when possible).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Dict, List, Optional

from repro import api
from repro.compiler.pipeline import CompilationReport


def _read_source(token: str) -> str:
    if token == "-":
        return sys.stdin.read()
    if token.startswith("@"):
        with open(token[1:], "r", encoding="utf-8") as handle:
            return handle.read()
    return token


def _parse_value(text: str) -> object:
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        pass
    # Accept shell-style booleans: `--option select_rotation_keys=false`
    # must not silently become the truthy string "false".
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    return text


def _parse_options(pairs: Optional[List[str]]) -> Dict[str, object]:
    options: Dict[str, object] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--option expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        options[key.strip()] = _parse_value(value.strip())
    return options


def _parse_inputs(specs: Optional[List[str]]) -> Optional[Dict[str, int]]:
    if not specs:
        return None
    inputs: Dict[str, int] = {}
    for spec in specs:
        for pair in spec.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise SystemExit(f"--inputs expects name=int pairs, got {pair!r}")
            key, _, value = pair.partition("=")
            inputs[key.strip()] = int(value)
    return inputs


def _print_report(report: CompilationReport, emit_seal: bool) -> None:
    print(f"circuit {report.name!r}")
    print(f"  compile time : {report.compile_time_s * 1000.0:.2f} ms")
    print(
        f"  cost         : {report.initial_cost:.1f} -> {report.final_cost:.1f}"
        f" ({report.cost_improvement:.0%} reduction)"
    )
    if report.rewrite_steps:
        print(f"  rewrites     : {len(report.rewrite_steps)} step(s)")
    print("  stats        :", json.dumps(report.stats.as_dict()))
    if report.trace is not None:
        print("  pipeline     :")
        for stage in report.trace.stages:
            print(
                f"    {stage.name:<18} {stage.wall_time_s * 1000.0:9.3f} ms"
                f"   cost {stage.cost_before:.1f} -> {stage.cost_after:.1f}"
            )
    if emit_seal:
        print("  SEAL C++     :")
        for line in report.seal_code().splitlines():
            print(f"    {line}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--compiler", default="greedy", help="registry name (see list-compilers)")
    parser.add_argument(
        "--option",
        action="append",
        metavar="KEY=VALUE",
        help="compiler factory option (repeatable)",
    )
    parser.add_argument("--workers", type=int, default=1, help="process-pool workers for batches")
    parser.add_argument("--cache-dir", default=None, help="directory for the on-disk cache tier")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__.split("\n\n")[0])
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser(
        "compile", help="compile s-expression sources and print stats + trace"
    )
    compile_parser.add_argument(
        "sources", nargs="+", help="s-expression, @file, or - for stdin"
    )
    compile_parser.add_argument("--name", default=None, help="circuit name (single source)")
    compile_parser.add_argument(
        "--emit-seal", action="store_true", help="print the generated SEAL-style C++"
    )
    _add_common(compile_parser)

    run_parser = subparsers.add_parser(
        "run", help="compile, execute on the BFV simulator and verify"
    )
    run_parser.add_argument("source", help="s-expression, @file, or - for stdin")
    run_parser.add_argument(
        "--inputs",
        action="append",
        metavar="a=1,b=2",
        help="program inputs (repeatable; default: seeded random values)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="seed for generated inputs")
    run_parser.add_argument(
        "--input-range",
        type=int,
        default=7,
        help="generated inputs are uniform over [0, input-range]",
    )
    run_parser.add_argument("--name", default=None, help="circuit name")
    run_parser.add_argument(
        "--backend",
        default=None,
        help="execution backend (see list-backends; default: reference)",
    )
    _add_common(run_parser)

    batch_parser = subparsers.add_parser(
        "run-batch", help="compile once, execute a batch of input sets and verify each"
    )
    batch_parser.add_argument("source", help="s-expression, @file, or - for stdin")
    batch_parser.add_argument(
        "--batch", type=int, default=8, help="input sets to execute (seeded)"
    )
    batch_parser.add_argument("--seed", type=int, default=0, help="base seed for generated inputs")
    batch_parser.add_argument(
        "--input-range",
        type=int,
        default=7,
        help="generated inputs are uniform over [0, input-range]",
    )
    batch_parser.add_argument("--name", default=None, help="circuit name")
    batch_parser.add_argument(
        "--backend",
        default="vector-vm",
        help="execution backend (see list-backends; default: vector-vm)",
    )
    _add_common(batch_parser)

    subparsers.add_parser("list-compilers", help="show registered compiler configurations")
    subparsers.add_parser("list-backends", help="show registered execution backends")

    workloads_parser = subparsers.add_parser(
        "workloads", help="list registered workloads, or run one as a verified batch"
    )
    workloads_parser.add_argument(
        "name", nargs="?", default=None, help="workload to run (omit to list all)"
    )
    workloads_parser.add_argument(
        "--batch", type=int, default=8, help="input sets to execute"
    )
    workloads_parser.add_argument("--seed", type=int, default=0, help="base input seed")
    workloads_parser.add_argument(
        "--compiler", default=None, help="override the workload's default compiler"
    )
    workloads_parser.add_argument(
        "--backend", default=None, help="override the workload's default backend"
    )
    workloads_parser.add_argument(
        "--option",
        action="append",
        metavar="KEY=VALUE",
        help="workload factory option (repeatable), e.g. size=16",
    )

    tape_parser = subparsers.add_parser(
        "tape",
        help="dump the vector VM's optimized executable tape for a kernel",
    )
    tape_parser.add_argument(
        "source",
        help="workload name, kernel name (see workloads / bench suites), "
        "s-expression, @file, or - for stdin",
    )
    tape_parser.add_argument(
        "--compiler",
        default=None,
        help="compiler producing the circuit (default: the workload's, else greedy)",
    )
    tape_parser.add_argument(
        "--degree", type=int, default=1024, help="polynomial modulus degree n"
    )
    tape_parser.add_argument(
        "--input-range",
        type=int,
        default=7,
        help="input magnitude bound selecting the reduction plan",
    )
    tape_parser.add_argument(
        "--emit-fn",
        action="store_true",
        help="also print the generated specialized Python function",
    )

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="statically verify a kernel: pipeline invariants + tape safety",
    )
    analyze_parser.add_argument(
        "source",
        nargs="?",
        default=None,
        help="workload name, kernel name, s-expression, @file or -; "
        "omitted = sweep every registered workload",
    )
    analyze_parser.add_argument(
        "--compiler",
        default=None,
        help="compiler producing the circuit (default: the workload's, else greedy)",
    )
    analyze_parser.add_argument(
        "--degree", type=int, default=1024, help="polynomial modulus degree n"
    )
    analyze_parser.add_argument(
        "--opt-level",
        type=int,
        default=2,
        choices=(0, 1, 2),
        help="vector-VM opt level under analysis (0 skips the tape verifier)",
    )
    analyze_parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="concurrency/hygiene lint over the repro sources",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )

    bench_workloads_parser = subparsers.add_parser(
        "bench-workloads",
        help="benchmark the workloads: direct vs server path + mixed traffic",
    )
    bench_workloads_parser.add_argument(
        "--batch", type=int, default=16, help="input sets per workload row"
    )
    bench_workloads_parser.add_argument(
        "--traffic-jobs", type=int, default=60, help="jobs in the mixed-traffic pass"
    )
    bench_workloads_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrival rate in jobs/s (default: burst)",
    )
    bench_workloads_parser.add_argument("--seed", type=int, default=0)
    bench_workloads_parser.add_argument(
        "--workers", type=int, default=1, help="server worker threads"
    )
    bench_workloads_parser.add_argument(
        "--out", default=None, help="also write the JSON payload to this path"
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the job-orchestration server over a state directory"
    )
    serve_parser.add_argument(
        "--state-dir", required=True, help="directory of the persistent job store"
    )
    serve_parser.add_argument(
        "--backend", default=None, help="default execution backend for jobs"
    )
    serve_parser.add_argument("--compiler", default="greedy", help="default compiler for jobs")
    serve_parser.add_argument(
        "--workers", type=int, default=1, help="execution worker threads"
    )
    serve_parser.add_argument(
        "--poll-interval", type=float, default=0.05, help="store poll cadence (seconds)"
    )
    serve_parser.add_argument(
        "--drain",
        action="store_true",
        help="process everything currently queued, then exit (CI mode)",
    )
    serve_parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="stop serving after this many seconds (default: until interrupted)",
    )
    serve_parser.add_argument("--cache-dir", default=None, help="compilation disk-cache directory")
    serve_parser.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        help="bound the queue; overflowing jobs are shed (default: unbounded)",
    )
    serve_parser.add_argument(
        "--per-priority-capacity",
        type=int,
        default=None,
        help="bound each priority level separately (per-class backpressure)",
    )
    serve_parser.add_argument(
        "--aging-interval",
        type=float,
        default=None,
        help="seconds of waiting that raise a job's effective priority by one",
    )
    serve_parser.add_argument(
        "--admission",
        choices=("off", "shed", "downgrade"),
        default="off",
        help="admission control against the --slo wait budgets",
    )
    serve_parser.add_argument(
        "--slo",
        action="append",
        metavar="PRIO=WAIT[:RUN]",
        help="per-priority latency budget in seconds (repeatable), e.g. 1=0.5:2",
    )
    serve_parser.add_argument(
        "--trace",
        action="store_true",
        help="record end-to-end spans to traces.jsonl (see `repro trace`)",
    )

    submit_parser = subparsers.add_parser(
        "submit", help="queue a compile/execute job into a state directory"
    )
    submit_parser.add_argument("source", help="s-expression, @file, or - for stdin")
    submit_parser.add_argument(
        "--state-dir", required=True, help="directory of the persistent job store"
    )
    submit_parser.add_argument(
        "--kind", choices=("execute", "compile"), default="execute", help="job kind"
    )
    submit_parser.add_argument(
        "--inputs",
        action="append",
        metavar="a=1,b=2",
        help="program inputs (repeatable; default: seeded random values)",
    )
    submit_parser.add_argument("--seed", type=int, default=0, help="seed for generated inputs")
    submit_parser.add_argument(
        "--input-range",
        type=int,
        default=7,
        help="generated inputs are uniform over [0, input-range]",
    )
    submit_parser.add_argument(
        "--compiler", default=None, help="compiler registry name (default: server default)"
    )
    submit_parser.add_argument(
        "--backend", default=None, help="execution backend (default: server default)"
    )
    submit_parser.add_argument("--priority", type=int, default=0, help="higher runs earlier")
    submit_parser.add_argument(
        "--max-retries", type=int, default=0, help="re-run attempts after a failure"
    )
    submit_parser.add_argument("--name", default=None, help="job/circuit name")
    submit_parser.add_argument(
        "--option",
        action="append",
        metavar="KEY=VALUE",
        help="compiler factory option (repeatable)",
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="block until the serving process completes the job, then print it",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=60.0, help="--wait timeout in seconds"
    )

    jobs_parser = subparsers.add_parser(
        "jobs", help="list the jobs of a state directory with their status"
    )
    jobs_parser.add_argument(
        "--state-dir", required=True, help="directory of the persistent job store"
    )
    jobs_parser.add_argument(
        "--status",
        default=None,
        help="only show jobs in these statuses (comma-separated, e.g. shed,failed)",
    )

    metrics_parser = subparsers.add_parser(
        "metrics", help="print the server's latest telemetry snapshot"
    )
    metrics_parser.add_argument(
        "--state-dir", required=True, help="directory of the persistent job store"
    )
    metrics_parser.add_argument(
        "--watch",
        action="store_true",
        help="re-read the snapshot on an interval; prints only when the "
        "sequence number advances (Ctrl-C to stop)",
    )
    metrics_parser.add_argument(
        "--delta",
        action="store_true",
        help="with --watch: print counter deltas and rates between snapshots "
        "instead of the raw payload",
    )
    metrics_parser.add_argument(
        "--interval", type=float, default=1.0, help="--watch poll cadence in seconds"
    )
    metrics_parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="with --watch: exit after this many updates (default: until Ctrl-C)",
    )

    trace_parser = subparsers.add_parser(
        "trace", help="export or summarize the span traces of a --trace serving run"
    )
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_export = trace_subparsers.add_parser(
        "export", help="write a Chrome trace-event JSON (chrome://tracing, Perfetto)"
    )
    trace_export.add_argument(
        "--state-dir", required=True, help="directory of the persistent job store"
    )
    trace_export.add_argument(
        "--out", default=None, help="output path (default: <state-dir>/trace.json)"
    )
    trace_report = trace_subparsers.add_parser(
        "report", help="per-stage latency rollup with self-time attribution"
    )
    trace_report.add_argument(
        "--state-dir", required=True, help="directory of the persistent job store"
    )

    top_parser = subparsers.add_parser(
        "top", help="ops console over the metrics snapshot (queue, SLOs, stages)"
    )
    top_parser.add_argument(
        "--state-dir", required=True, help="directory of the persistent job store"
    )
    top_parser.add_argument(
        "--watch", action="store_true", help="refresh on an interval (Ctrl-C to stop)"
    )
    top_parser.add_argument(
        "--interval", type=float, default=1.0, help="--watch refresh cadence in seconds"
    )
    top_parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="with --watch: exit after this many refreshes",
    )

    study_parser = subparsers.add_parser(
        "study", help="run, resume and analyse ablation studies on the job server"
    )
    study_subparsers = study_parser.add_subparsers(dest="study_command", required=True)

    def _add_study_analysis(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--resamples", type=int, default=2000, help="bootstrap resamples for the CIs"
        )
        sub.add_argument("--out", default=None, help="also write the report JSON here")

    study_run = study_subparsers.add_parser(
        "run", help="execute a baseline + one-component-off matrix with replicates"
    )
    study_run.add_argument(
        "--study-dir", required=True, help="directory for study state and per-run servers"
    )
    study_run.add_argument("--name", default="system-ablation", help="study name")
    study_run.add_argument(
        "--components",
        default=None,
        help="comma-separated component names (default: the default matrix)",
    )
    study_run.add_argument(
        "--workloads",
        default="dot-product,max-tree",
        help="comma-separated workload registry names cycled across jobs",
    )
    study_run.add_argument(
        "--replicates", type=int, default=3, help="runs per condition (≥3 for CIs)"
    )
    study_run.add_argument(
        "--jobs-per-replicate", type=int, default=8, help="jobs submitted per run"
    )
    study_run.add_argument("--seed", type=int, default=0, help="study root seed")
    study_run.add_argument(
        "--workers", type=int, default=2, help="server worker threads per run"
    )
    study_run.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="execute at most this many pending runs (resume later for the rest)",
    )
    _add_study_analysis(study_run)

    study_resume = study_subparsers.add_parser(
        "resume", help="finish an interrupted study, skipping recorded replicates"
    )
    study_resume.add_argument(
        "--study-dir", required=True, help="directory of the interrupted study"
    )
    study_resume.add_argument(
        "--max-runs", type=int, default=None, help="cap pending runs this invocation"
    )
    _add_study_analysis(study_resume)

    study_report_parser = study_subparsers.add_parser(
        "report", help="re-analyse a study directory without executing anything"
    )
    study_report_parser.add_argument(
        "--study-dir", required=True, help="directory of the recorded study"
    )
    _add_study_analysis(study_report_parser)

    study_subparsers.add_parser(
        "components", help="list the registered ablatable components"
    )
    return parser


def _print_study_report(report: Dict[str, object]) -> None:
    primary = report["primary_metric"]
    print(f"study        : {report['study']} ({report['runs_recorded']} runs recorded)")
    print(f"primary      : {primary}")
    for summary in report["conditions"]:
        stats = summary["metrics"].get(primary, {})
        print(
            f"  {summary['condition']:<20} {primary} = {stats.get('mean', 0.0):9.3f}"
            f" ± {stats.get('std', 0.0):7.3f}  (n={stats.get('n', 0)})"
        )
    print("ranking      : (importance = fraction of baseline lost when removed)")
    for row in report["ranking"]:
        print(
            f"  #{row['rank']} {row['component']:<20} importance {row['importance']:+.3f}"
            f"  CI [{row['ci_low']:+.3f}, {row['ci_high']:+.3f}]"
            f"  ({row['ablated_replicates']} replicate(s))"
        )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list-compilers":
        rows = api.list_compilers()
        width = max(len(row["name"]) for row in rows)
        for row in rows:
            print(f"{row['name']:<{width}}  {row['description']}")
            if row["paper_config"]:
                print(f"{'':<{width}}  ({row['paper_config']})")
        return 0

    if args.command == "list-backends":
        rows = api.list_backends()
        width = max(len(row["name"]) for row in rows)
        for row in rows:
            print(f"{row['name']:<{width}}  {row['description']}")
            if row["use_when"]:
                print(f"{'':<{width}}  (use when: {row['use_when']})")
        return 0

    if args.command == "workloads":
        if args.name is None:
            rows = api.list_workloads()
            width = max(len(row["name"]) for row in rows)
            for row in rows:
                defaults = f"[{row['suite']}] {row['compiler']} / {row['backend']}"
                print(f"{row['name']:<{width}}  {defaults:<34} {row['description']}")
            return 0
        outcome = api.run_workload(
            args.name,
            batch=args.batch,
            seed=args.seed,
            compiler=args.compiler,
            backend=args.backend,
            **_parse_options(args.option),
        )
        batch = outcome.outcome
        _print_report(batch.report, emit_seal=False)
        print("  workload     :", outcome.workload.name, f"({outcome.workload.suite})")
        print("  backend      :", batch.backend)
        print(f"  batch size   : {batch.batch_size}")
        print(f"  exec wall    : {batch.wall_time_s * 1000.0:.2f} ms "
              f"({batch.throughput_per_s:.0f} input sets/s)")
        if batch.verified:
            print("  verified     :", "OK" if batch.all_correct else "MISMATCH")
            print("  oracle       :", "OK" if outcome.oracle_correct else "MISMATCH")
        else:
            print("  verified     : skipped (backend produces no outputs)")
        return 0 if batch.all_correct and outcome.oracle_correct else 1

    if args.command == "tape":
        from repro.backends.tapeopt import get_compiled_tape
        from repro.fhe.params import BFVParameters
        from repro.workloads import available_workloads, build_workload

        source = args.source
        compiler = args.compiler
        name = None
        if source in available_workloads():
            workload = build_workload(source)
            source = workload.source
            compiler = compiler or workload.compiler
            name = workload.name
        else:
            from repro.kernels.registry import benchmark_suite

            match = next((b for b in benchmark_suite() if b.name == source), None)
            if match is not None:
                source = match.expression()
                name = match.name
            else:
                source = _read_source(source)
        report = api.compile(source, compiler or "greedy", name=name)
        params = BFVParameters.default(args.degree)
        tape = get_compiled_tape(report.circuit, params)
        print(f"kernel: {report.name} ({report.circuit.name}), n={args.degree}")
        print(tape.render(input_bound=args.input_range))
        if args.emit_fn:
            plan = tape.plan_for(args.input_range)
            print()
            print(plan.source())
        return 0

    if args.command == "analyze":
        from repro.workloads import available_workloads, build_workload

        def _resolve(token: str):
            """(source, compiler, name) for a workload/kernel/s-expr token."""
            if token in available_workloads():
                workload = build_workload(token)
                return workload.source, args.compiler or workload.compiler, workload.name
            from repro.kernels.registry import benchmark_suite

            match = next((b for b in benchmark_suite() if b.name == token), None)
            if match is not None:
                return match.expression(), args.compiler, match.name
            return _read_source(token), args.compiler, None

        targets = [args.source] if args.source else sorted(available_workloads())
        payload = []
        failed = False
        for token in targets:
            source, compiler, name = _resolve(token)
            _, analysis = api.analyze(
                source,
                compiler or "greedy",
                name=name,
                degree=args.degree,
                opt_level=args.opt_level,
            )
            failed = failed or not analysis.ok
            if args.json:
                entry = analysis.as_dict()
                entry["target"] = token
                payload.append(entry)
            else:
                for line in analysis.summary_lines():
                    print(f"{token}: {line}")
                for finding in analysis.findings:
                    print(f"  {finding.render()}")
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if failed else 0

    if args.command == "lint":
        report, files_checked = api.lint(args.paths or None)
        if args.json:
            payload = report.as_dict()
            payload["files_checked"] = files_checked
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for finding in report.findings:
                print(finding.render())
            for line in report.summary_lines():
                print(line)
            print(f"files checked: {files_checked}")
        return 0 if report.ok else 1

    if args.command == "bench-workloads":
        from repro.workloads.traffic import (
            benchmark_problems,
            benchmark_workloads,
            summarize_benchmark,
        )

        payload = benchmark_workloads(
            batch=args.batch,
            traffic_jobs=args.traffic_jobs,
            rate=args.rate,
            seed=args.seed,
            workers=args.workers,
        )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        for line in summarize_benchmark(payload):
            print(line)
        problems = benchmark_problems(payload)
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1 if problems else 0

    if args.command == "serve":
        slo = None
        if args.slo:
            from repro.server.telemetry import SLOPolicy

            wait_budgets, run_budgets = {}, {}
            for spec in args.slo:
                key, _, budgets = spec.partition("=")
                wait_part, _, run_part = budgets.partition(":")
                wait_budgets[int(key)] = float(wait_part)
                if run_part:
                    run_budgets[int(key)] = float(run_part)
            slo = SLOPolicy.from_budgets(wait_budgets, run_budgets)
        server = api.serve(
            args.state_dir,
            backend=args.backend,
            compiler=args.compiler,
            workers=args.workers,
            cache_dir=args.cache_dir,
            poll_interval=args.poll_interval,
            queue_capacity=args.queue_capacity,
            per_priority_capacity=args.per_priority_capacity,
            aging_interval_s=args.aging_interval,
            slo=slo,
            admission=args.admission,
            tracing=args.trace,
            start=False,
        )
        try:
            if args.drain:
                processed = server.drain()
                print(f"drained {processed} job(s)")
            else:
                import time as _time

                server.start()
                print(
                    f"serving jobs from {args.state_dir} "
                    f"(backend default: {server.default_backend}, "
                    f"workers: {server.workers}) — Ctrl-C to stop"
                )
                deadline = (
                    _time.monotonic() + args.max_seconds
                    if args.max_seconds is not None
                    else None
                )
                try:
                    while deadline is None or _time.monotonic() < deadline:
                        _time.sleep(min(args.poll_interval, 0.25))
                except KeyboardInterrupt:
                    pass
        finally:
            server.close()
        counters = server.telemetry.snapshot()["counters"]
        print("telemetry    :", json.dumps(counters, sort_keys=True))
        return 0

    if args.command == "submit":
        job_id = api.submit(
            _read_source(args.source),
            _parse_inputs(args.inputs),
            args.compiler,
            kind=args.kind,
            backend=args.backend,
            seed=args.seed,
            input_range=args.input_range,
            priority=args.priority,
            max_retries=args.max_retries,
            name=args.name,
            state_dir=args.state_dir,
            **_parse_options(args.option),
        )
        print(job_id)
        if args.wait:
            payload = api.result(job_id, state_dir=args.state_dir, timeout=args.timeout)
            print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if args.command == "jobs":
        from repro.server.store import JobStore

        jobs = sorted(
            JobStore(args.state_dir).replay().values(),
            key=lambda job: job.submitted_at,
        )
        if args.status:
            wanted = {part.strip() for part in args.status.split(",") if part.strip()}
            jobs = [job for job in jobs if job.status.value in wanted]
        for job in jobs:
            row = job.summary()
            print(
                f"{row['id']}  {row['status']:<9}  {row['kind']:<7} "
                f"attempts={row['attempts']}"
                + (f"  batch={row['coalesced_batch']}" if "coalesced_batch" in row else "")
                + (f"  error={row['error']!r}" if "error" in row else "")
            )
        print(f"{len(jobs)} job(s)")
        return 0

    if args.command == "metrics":
        import os as _os
        import time as _time

        from repro.obs.console import read_snapshot, render_delta, snapshot_delta
        from repro.server.store import JobStore

        path = JobStore(args.state_dir).metrics_path
        if not _os.path.exists(path):
            print(f"no metrics snapshot at {path} (has the server run?)", file=sys.stderr)
            return 1
        if not args.watch:
            with open(path, "r", encoding="utf-8") as handle:
                print(handle.read().rstrip())
            return 0
        previous = None
        updates = 0
        try:
            while args.count is None or updates < args.count:
                snapshot = read_snapshot(path)
                if snapshot is not None:
                    meta = snapshot.get("meta", {})
                    # Only print when the writer advanced; the sequence number
                    # makes re-reads of the same snapshot cheap to skip (pid +
                    # wall time disambiguate a restarted server whose fresh
                    # sequence collides with the old one).
                    stamp = (
                        meta.get("pid"),
                        meta.get("sequence", -1),
                        meta.get("wall_time"),
                    )
                    last_meta = previous.get("meta", {}) if previous is not None else None
                    last = (
                        (
                            last_meta.get("pid"),
                            last_meta.get("sequence", -1),
                            last_meta.get("wall_time"),
                        )
                        if last_meta is not None
                        else None
                    )
                    if last is None or stamp != last:
                        if args.delta and previous is not None:
                            print(render_delta(snapshot_delta(previous, snapshot)))
                        elif not args.delta:
                            print(json.dumps(snapshot, indent=2, sort_keys=True))
                        previous = snapshot
                        updates += 1
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
        return 0

    if args.command == "trace":
        import os as _os

        from repro.obs.export import (
            export_chrome_trace,
            render_stage_report,
            stage_rollup,
        )
        from repro.obs.trace import load_spans
        from repro.server.store import JobStore

        path = JobStore(args.state_dir).trace_path
        if not _os.path.exists(path):
            print(
                f"no trace at {path} (serve with --trace to record spans)",
                file=sys.stderr,
            )
            return 1
        spans = load_spans(path)
        if not spans:
            print(f"trace at {path} holds no spans", file=sys.stderr)
            return 1
        if args.trace_command == "export":
            out = args.out or _os.path.join(args.state_dir, "trace.json")
            events = export_chrome_trace(spans, out)
            print(f"wrote {events} event(s) from {len(spans)} span(s) to {out}")
            print("open in chrome://tracing or https://ui.perfetto.dev")
            return 0
        # report: server-path attribution over stage/tick spans, then the
        # per-job lifecycle view (queue_wait / run) from the job mirrors.
        print(render_stage_report(stage_rollup(spans)))
        job_rollup = stage_rollup(spans, cats=("job",))
        if job_rollup["stages"]:
            print()
            print("job lifecycle (per-job spans, overlapping — not wall-time shares):")
            print(render_stage_report(job_rollup))
        return 0

    if args.command == "top":
        import os as _os
        import time as _time

        from repro.obs.console import read_snapshot, render_top
        from repro.server.store import JobStore

        path = JobStore(args.state_dir).metrics_path
        if not _os.path.exists(path):
            print(f"no metrics snapshot at {path} (has the server run?)", file=sys.stderr)
            return 1
        previous = None
        refreshes = 0
        try:
            while True:
                snapshot = read_snapshot(path)
                if snapshot is None:
                    print(f"unreadable snapshot at {path}", file=sys.stderr)
                    return 1
                if args.watch:
                    # ANSI clear + home, like watch(1); plain print otherwise.
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(render_top(snapshot, previous, source=args.state_dir))
                sys.stdout.flush()
                refreshes += 1
                if not args.watch or (args.count is not None and refreshes >= args.count):
                    break
                previous = snapshot
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
        return 0

    if args.command == "study":
        if args.study_command == "components":
            rows = api.list_components()
            width = max(len(row["name"]) for row in rows)
            for row in rows:
                marker = " " if row["default"] else "*"
                print(f"{row['name']:<{width}} {marker} {row['description']}")
            print("(* = not in the default matrix; opt in via --components)")
            return 0

        def _progress(run, record):
            metrics = record.get("metrics", {})
            primary = metrics.get("throughput_jobs_per_s", 0.0)
            print(
                f"  ran {run.run_id:<28} seed={run.seed:<12}"
                f" throughput={primary:8.2f} jobs/s"
            )

        if args.study_command == "run":
            report = api.run_study(
                args.study_dir,
                name=args.name,
                components=(
                    [part.strip() for part in args.components.split(",") if part.strip()]
                    if args.components
                    else None
                ),
                workloads=[
                    part.strip() for part in args.workloads.split(",") if part.strip()
                ],
                replicates=args.replicates,
                jobs_per_replicate=args.jobs_per_replicate,
                seed=args.seed,
                workers=args.workers,
                max_runs=args.max_runs,
                resamples=args.resamples,
                progress=_progress,
            )
        elif args.study_command == "resume":
            report = api.run_study(
                args.study_dir,
                resume=True,
                max_runs=args.max_runs,
                resamples=args.resamples,
                progress=_progress,
            )
        else:  # report
            from repro.studies import StudyRunner, load_study_spec, study_report

            spec = load_study_spec(args.study_dir)
            if spec is None:
                print(f"no study recorded under {args.study_dir}", file=sys.stderr)
                return 1
            records = StudyRunner(spec, args.study_dir).load_records()
            report = study_report(
                spec.as_dict(), records, seed=spec.seed, resamples=args.resamples
            )
            report["study_dir"] = args.study_dir

        _print_study_report(report)
        progress = report.get("progress")
        if progress is not None and not progress["complete"]:
            remaining = len(progress["remaining"])
            print(f"incomplete   : {remaining} run(s) pending — `study resume` to finish")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return 0

    options = _parse_options(args.option)

    if args.command == "compile":
        sources = [_read_source(token) for token in args.sources]
        if len(sources) == 1:
            report = api.compile(
                sources[0],
                args.compiler,
                name=args.name,
                workers=args.workers,
                cache_dir=args.cache_dir,
                **options,
            )
            _print_report(report, args.emit_seal)
        else:
            batch = api.compile_batch(
                sources,
                args.compiler,
                workers=args.workers,
                cache_dir=args.cache_dir,
                **options,
            )
            for report in batch.reports:
                _print_report(report, args.emit_seal)
            print("batch        :", json.dumps(batch.as_dict()))
        return 0

    if args.command == "run":
        outcome = api.execute(
            _read_source(args.source),
            _parse_inputs(args.inputs),
            args.compiler,
            backend=args.backend,
            seed=args.seed,
            input_range=args.input_range,
            name=args.name,
            workers=args.workers,
            cache_dir=args.cache_dir,
            **options,
        )
        _print_report(outcome.report, emit_seal=False)
        print("  backend      :", outcome.backend)
        print("  inputs       :", json.dumps(outcome.inputs))
        print("  outputs      :", outcome.outputs)
        print("  reference    :", outcome.reference)
        print(f"  latency      : {outcome.execution.latency_ms:.2f} ms")
        print(f"  noise budget : {outcome.execution.consumed_noise_budget:.1f} bits consumed")
        if outcome.verified:
            print("  verified     :", "OK" if outcome.correct else "MISMATCH")
        else:
            print("  verified     : skipped (backend produces no outputs)")
        return 0 if outcome.correct else 1

    if args.command == "run-batch":
        batch = api.execute_batch(
            _read_source(args.source),
            batch=args.batch,
            backend=args.backend,
            seed=args.seed,
            input_range=args.input_range,
            name=args.name,
            compiler=args.compiler,
            workers=args.workers,
            cache_dir=args.cache_dir,
            **options,
        )
        _print_report(batch.report, emit_seal=False)
        correct = sum(
            1 for out, ref in zip(batch.outputs, batch.references) if out == ref
        )
        print("  backend      :", batch.backend)
        print(f"  batch size   : {batch.batch_size}")
        print(f"  exec wall    : {batch.wall_time_s * 1000.0:.2f} ms "
              f"({batch.throughput_per_s:.0f} input sets/s)")
        if batch.executions:
            execution = batch.executions[0]
            print(f"  latency      : {execution.latency_ms:.2f} ms per input set (simulated)")
            print(f"  noise budget : {execution.consumed_noise_budget:.1f} bits consumed")
        if batch.verified:
            print(f"  verified     : {correct}/{batch.batch_size} OK")
        else:
            print("  verified     : skipped (backend produces no outputs)")
        return 0 if batch.all_correct else 1

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `python -m repro ... | head`
        sys.exit(0)
