"""The unified compilation facade: ``repro.compile`` / ``repro.execute``.

One import gives the whole system behind names instead of hand-built
objects::

    import repro

    report = repro.compile("(* (+ a b) (+ c d))", compiler="greedy")
    outcome = repro.execute("(* (+ a b) (+ c d))", {"a": 1, "b": 2, "c": 3, "d": 4})
    repro.list_compilers()

Sources may be s-expression strings (the paper's textual IR), parsed
:class:`~repro.ir.nodes.Expr` trees, or staged DSL
:class:`~repro.compiler.dsl.Program` objects.  Compilers are addressed by
registry name (with ``**options`` forwarded to the factory), by
:class:`~repro.compiler.registry.CompilerSpec`, or by a live compiler
object.  Every compilation runs through the
:class:`~repro.service.service.CompilationService`, so ``cache_dir`` gives
cross-process disk caching and ``workers`` fans batches out over a
cost-balanced process pool.  ``python -m repro`` exposes the same facade on
the command line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compiler.dsl import Program
from repro.compiler.executor import (
    ExecutionReport,
    declared_outputs,
    execute as execute_circuit,
    reference_output,
)
from repro.compiler.pipeline import CompilationReport
from repro.compiler.registry import (
    CompilerSpec,
    available_compilers,
    compiler_info,
)
from repro.ir.analysis import variables
from repro.ir.nodes import Expr
from repro.ir.parser import parse
from repro.service.cache import CompilationCache
from repro.service.service import BatchReport, CompilationJob, CompilationService

__all__ = [
    "Source",
    "to_expression",
    "make_service",
    "compile",
    "compile_batch",
    "execute",
    "RunOutcome",
    "list_compilers",
    "describe_compiler",
    "CompilerSpec",
    "CompilationCache",
    "CompilationService",
]

#: Anything the facade accepts as a program: s-expression text, an IR
#: expression, or a staged DSL program.
Source = Union[str, Expr, Program]


def to_expression(source: Source) -> Tuple[Expr, Optional[str]]:
    """Normalize a source into ``(expression, suggested_name)``."""
    if isinstance(source, Program):
        return source.output_expr, source.name
    if isinstance(source, Expr):
        return source, None
    if isinstance(source, str):
        return parse(source), None
    raise TypeError(
        f"expected an s-expression string, Expr or Program, got {type(source).__name__}"
    )


def make_service(
    compiler: Union[str, CompilerSpec, object] = "greedy",
    *,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> CompilationService:
    """A :class:`CompilationService` for a named (or given) compiler."""
    if isinstance(compiler, str) and options:
        compiler = CompilerSpec.create(compiler, **options)
    elif options:
        raise ValueError("compiler options require a registry name, not an instance")
    return CompilationService(compiler, workers=workers, cache=cache, cache_dir=cache_dir)


def compile(
    source: Source,
    compiler: Union[str, CompilerSpec, object, None] = None,
    *,
    name: Optional[str] = None,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    service: Optional[CompilationService] = None,
    **options: object,
) -> CompilationReport:
    """Compile one program under a named compiler configuration.

    ``compiler`` defaults to ``"greedy"``.  Pass ``service=`` to reuse an
    existing :class:`CompilationService` (its compiler and cache then apply,
    so combining it with ``compiler``/``workers``/``cache`` arguments is an
    error rather than a silent override).

    Returns the same :class:`CompilationReport` (stats, costs, rewrite steps,
    pipeline trace, SEAL codegen) every compiler in the repo produces.
    """
    expr, suggested = to_expression(source)
    if service is not None:
        if compiler is not None or options or cache is not None or cache_dir is not None or workers != 1:
            raise ValueError(
                "pass either service= or compiler/options/workers/cache arguments, not both"
            )
    else:
        service = make_service(
            compiler if compiler is not None else "greedy",
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            **options,
        )
    return service.compile_expression(expr, name=name or suggested or "circuit")


def compile_batch(
    sources: Iterable[Union[Source, Tuple[Source, str]]],
    compiler: Union[str, CompilerSpec, object] = "greedy",
    *,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> BatchReport:
    """Compile many programs in one cost-balanced (optionally parallel) batch."""
    jobs: List[CompilationJob] = []
    for index, item in enumerate(sources):
        explicit = None
        if isinstance(item, tuple):
            item, explicit = item
        expr, suggested = to_expression(item)
        jobs.append(CompilationJob(expr=expr, name=explicit or suggested or f"circuit_{index}"))
    service = make_service(
        compiler, workers=workers, cache=cache, cache_dir=cache_dir, **options
    )
    return service.compile_batch(jobs)


@dataclass
class RunOutcome:
    """Compile + execute + verify, bundled."""

    report: CompilationReport
    execution: ExecutionReport
    inputs: Dict[str, int]
    reference: List[int]
    outputs: List[int]

    @property
    def correct(self) -> bool:
        """True when the decrypted outputs match the plaintext reference."""
        return self.outputs == self.reference


def _sample_inputs(expr: Expr, seed: int, input_range: int = 7) -> Dict[str, int]:
    rng = np.random.default_rng(seed)
    return {name: int(rng.integers(0, input_range + 1)) for name in variables(expr)}


def execute(
    source: Union[Source, CompilationReport],
    inputs: Optional[Mapping[str, int]] = None,
    compiler: Union[str, CompilerSpec, object, None] = None,
    *,
    seed: int = 0,
    name: Optional[str] = None,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> RunOutcome:
    """Compile (unless given a report) and run on the simulated BFV backend.

    Missing ``inputs`` are drawn deterministically from ``seed``.  The
    decrypted outputs are always verified against the plaintext reference
    (see :attr:`RunOutcome.correct`).
    """
    if isinstance(source, CompilationReport):
        report = source
    else:
        report = compile(
            source,
            compiler,
            name=name,
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            **options,
        )
    expr = report.source_expr
    if inputs is None:
        inputs = _sample_inputs(expr, seed=seed)
    inputs = {key: int(value) for key, value in inputs.items()}
    execution = execute_circuit(report.circuit, inputs)
    from repro.ir.evaluate import output_arity

    reference = reference_output(expr, inputs, slot_count=max(64, output_arity(expr) + 8))
    outputs = declared_outputs(report.circuit, execution.outputs)
    return RunOutcome(
        report=report,
        execution=execution,
        inputs=inputs,
        reference=reference,
        outputs=outputs,
    )


def list_compilers() -> List[Dict[str, str]]:
    """Every registered compiler: name, description and paper configuration."""
    rows = []
    for compiler_name in available_compilers():
        info = compiler_info(compiler_name)
        rows.append(
            {
                "name": info.name,
                "description": info.description,
                "paper_config": info.paper_config,
            }
        )
    return rows


def describe_compiler(compiler_name: str, **options: object) -> str:
    """The canonical, version-stamped cache identity of a configuration."""
    return CompilerSpec.create(compiler_name, **options).describe()
