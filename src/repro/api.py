"""The unified compilation facade: ``repro.compile`` / ``repro.execute``.

One import gives the whole system behind names instead of hand-built
objects::

    import repro

    report = repro.compile("(* (+ a b) (+ c d))", compiler="greedy")
    outcome = repro.execute("(* (+ a b) (+ c d))", {"a": 1, "b": 2, "c": 3, "d": 4})
    batch = repro.execute_batch("(* (+ a b) (+ c d))", batch=32, backend="vector-vm")
    repro.list_compilers()
    repro.list_backends()

Sources may be s-expression strings (the paper's textual IR), parsed
:class:`~repro.ir.nodes.Expr` trees, or staged DSL
:class:`~repro.compiler.dsl.Program` objects.  Compilers are addressed by
registry name (with ``**options`` forwarded to the factory), by
:class:`~repro.compiler.registry.CompilerSpec`, or by a live compiler
object.  Every compilation runs through the
:class:`~repro.service.service.CompilationService`, so ``cache_dir`` gives
cross-process disk caching and ``workers`` fans batches out over a
cost-balanced process pool.  Execution runs on a named
:class:`~repro.backends.base.ExecutionBackend` (``reference``,
``vector-vm``, ``cost-sim``); ``python -m repro`` exposes the same facade on
the command line.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends.base import backend_produces_outputs
from repro.backends.registry import (
    BackendSpec,
    available_backends,
    backend_info,
    get_backend,
)
from repro.compiler.dsl import Program
from repro.compiler.executor import (
    ExecutionReport,
    declared_outputs,
    reference_output,
)
from repro.compiler.pipeline import CompilationReport
from repro.compiler.registry import (
    CompilerSpec,
    available_compilers,
    compiler_info,
)
from repro.ir.analysis import variables
from repro.ir.nodes import Expr
from repro.ir.parser import parse
from repro.service.cache import CompilationCache
from repro.service.service import BatchReport, CompilationJob, CompilationService

__all__ = [
    "Source",
    "to_expression",
    "make_service",
    "compile",
    "compile_batch",
    "execute",
    "execute_batch",
    "RunOutcome",
    "BatchRunOutcome",
    "list_compilers",
    "describe_compiler",
    "list_backends",
    "describe_backend",
    "CompilerSpec",
    "BackendSpec",
    "CompilationCache",
    "CompilationService",
]

#: Anything the facade accepts as a program: s-expression text, an IR
#: expression, or a staged DSL program.
Source = Union[str, Expr, Program]


def to_expression(source: Source) -> Tuple[Expr, Optional[str]]:
    """Normalize a source into ``(expression, suggested_name)``."""
    if isinstance(source, Program):
        return source.output_expr, source.name
    if isinstance(source, Expr):
        return source, None
    if isinstance(source, str):
        return parse(source), None
    raise TypeError(
        f"expected an s-expression string, Expr or Program, got {type(source).__name__}"
    )


def make_service(
    compiler: Union[str, CompilerSpec, object] = "greedy",
    *,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> CompilationService:
    """A :class:`CompilationService` for a named (or given) compiler."""
    if isinstance(compiler, str) and options:
        compiler = CompilerSpec.create(compiler, **options)
    elif options:
        raise ValueError("compiler options require a registry name, not an instance")
    return CompilationService(compiler, workers=workers, cache=cache, cache_dir=cache_dir)


def compile(
    source: Source,
    compiler: Union[str, CompilerSpec, object, None] = None,
    *,
    name: Optional[str] = None,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    service: Optional[CompilationService] = None,
    **options: object,
) -> CompilationReport:
    """Compile one program under a named compiler configuration.

    ``compiler`` defaults to ``"greedy"``.  Pass ``service=`` to reuse an
    existing :class:`CompilationService` (its compiler and cache then apply,
    so combining it with ``compiler``/``workers``/``cache`` arguments is an
    error rather than a silent override).

    Returns the same :class:`CompilationReport` (stats, costs, rewrite steps,
    pipeline trace, SEAL codegen) every compiler in the repo produces.
    """
    expr, suggested = to_expression(source)
    if service is not None:
        if compiler is not None or options or cache is not None or cache_dir is not None or workers != 1:
            raise ValueError(
                "pass either service= or compiler/options/workers/cache arguments, not both"
            )
    else:
        service = make_service(
            compiler if compiler is not None else "greedy",
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            **options,
        )
    return service.compile_expression(expr, name=name or suggested or "circuit")


def compile_batch(
    sources: Iterable[Union[Source, Tuple[Source, str]]],
    compiler: Union[str, CompilerSpec, object] = "greedy",
    *,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> BatchReport:
    """Compile many programs in one cost-balanced (optionally parallel) batch."""
    jobs: List[CompilationJob] = []
    for index, item in enumerate(sources):
        explicit = None
        if isinstance(item, tuple):
            item, explicit = item
        expr, suggested = to_expression(item)
        jobs.append(CompilationJob(expr=expr, name=explicit or suggested or f"circuit_{index}"))
    service = make_service(
        compiler, workers=workers, cache=cache, cache_dir=cache_dir, **options
    )
    return service.compile_batch(jobs)


@dataclass
class RunOutcome:
    """Compile + execute + verify, bundled."""

    report: CompilationReport
    execution: ExecutionReport
    inputs: Dict[str, int]
    reference: List[int]
    outputs: List[int]
    #: False when the backend produces no outputs (``cost-sim``), in which
    #: case nothing was decrypted and :attr:`correct` is vacuous.
    verified: bool = True

    @property
    def correct(self) -> bool:
        """True when the decrypted outputs match the plaintext reference.

        Vacuously true for accounting-only backends (``cost-sim``), which
        produce no outputs — check :attr:`verified` to distinguish.
        """
        return self.outputs == self.reference

    @property
    def backend(self) -> str:
        """Registry name of the backend that executed the circuit."""
        return self.execution.backend


@dataclass
class BatchRunOutcome:
    """Compile once + execute a whole batch of input sets + verify each."""

    report: CompilationReport
    executions: List[ExecutionReport]
    inputs: List[Dict[str, int]]
    references: List[List[int]]
    outputs: List[List[int]]
    #: Wall-clock seconds of the execution phase (not compilation).
    wall_time_s: float = 0.0
    #: False when the backend produces no outputs (``cost-sim``), in which
    #: case nothing was decrypted and :attr:`all_correct` is vacuous.
    verified: bool = True
    #: Registry name of the backend that executed the batch (meaningful even
    #: when the batch was empty and no reports exist).
    backend: str = "reference"

    @property
    def batch_size(self) -> int:
        return len(self.executions)

    @property
    def all_correct(self) -> bool:
        """True when every input set's outputs match its plaintext reference.

        Vacuously true for accounting-only backends — check
        :attr:`verified` to distinguish real verification from none.
        """
        return all(
            outputs == reference
            for outputs, reference in zip(self.outputs, self.references)
        )

    @property
    def throughput_per_s(self) -> float:
        """Executed input sets per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return len(self.executions) / self.wall_time_s


def _sample_inputs(expr: Expr, seed: int, input_range: int = 7) -> Dict[str, int]:
    rng = np.random.default_rng(seed)
    return {name: int(rng.integers(0, input_range + 1)) for name in variables(expr)}


def execute(
    source: Union[Source, CompilationReport],
    inputs: Optional[Mapping[str, int]] = None,
    compiler: Union[str, CompilerSpec, object, None] = None,
    *,
    backend: Union[str, BackendSpec, object, None] = None,
    seed: int = 0,
    name: Optional[str] = None,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> RunOutcome:
    """Compile (unless given a report) and run on a simulated BFV backend.

    ``backend`` names the execution backend (``reference`` by default;
    ``vector-vm`` for the batched tape VM, ``cost-sim`` for accounting
    only).  Missing ``inputs`` are drawn deterministically from ``seed``.
    Output-producing backends are always verified against the plaintext
    reference (see :attr:`RunOutcome.correct`); accounting-only backends
    skip verification because they decrypt nothing.
    """
    if isinstance(source, CompilationReport):
        report = source
    else:
        report = compile(
            source,
            compiler,
            name=name,
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            **options,
        )
    expr = report.source_expr
    if inputs is None:
        inputs = _sample_inputs(expr, seed=seed)
    inputs = {key: int(value) for key, value in inputs.items()}
    impl = get_backend(backend)
    execution = impl.execute(report.circuit, inputs)
    verified = backend_produces_outputs(impl)
    if verified:
        from repro.ir.evaluate import output_arity

        reference = reference_output(
            expr, inputs, slot_count=max(64, output_arity(expr) + 8)
        )
        outputs = declared_outputs(report.circuit, execution.outputs)
    else:
        reference = []
        outputs = []
    return RunOutcome(
        report=report,
        execution=execution,
        inputs=inputs,
        reference=reference,
        outputs=outputs,
        verified=verified,
    )


def execute_batch(
    source: Union[Source, CompilationReport],
    inputs: Optional[Sequence[Mapping[str, int]]] = None,
    compiler: Union[str, CompilerSpec, object, None] = None,
    *,
    batch: int = 8,
    backend: Union[str, BackendSpec, object, None] = None,
    seed: int = 0,
    name: Optional[str] = None,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> BatchRunOutcome:
    """Compile once and execute a whole batch of input sets.

    ``inputs`` is a sequence of input dicts; when omitted, ``batch`` input
    sets are drawn deterministically from ``seed``, ``seed + 1``, ...  The
    batch executes through the backend's ``execute_many`` — one pass over
    the vector VM's instruction tape serves the entire batch — and each
    input set is verified against its own plaintext reference.
    """
    if isinstance(source, CompilationReport):
        report = source
    else:
        report = compile(
            source,
            compiler,
            name=name,
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            **options,
        )
    expr = report.source_expr
    if inputs is None:
        if batch < 1:
            raise ValueError("batch must be at least 1")
        inputs_list = [_sample_inputs(expr, seed=seed + offset) for offset in range(batch)]
    else:
        inputs_list = [
            {key: int(value) for key, value in mapping.items()} for mapping in inputs
        ]
    impl = get_backend(backend)
    start = time.perf_counter()
    executions = impl.execute_many(report.circuit, inputs_list)
    wall_time_s = time.perf_counter() - start
    verified = backend_produces_outputs(impl)
    if verified:
        from repro.ir.evaluate import output_arity

        slot_count = max(64, output_arity(expr) + 8)
        references = [
            reference_output(expr, item, slot_count=slot_count) for item in inputs_list
        ]
        outputs = [
            declared_outputs(report.circuit, execution.outputs)
            for execution in executions
        ]
    else:
        references = [[] for _ in inputs_list]
        outputs = [[] for _ in inputs_list]
    return BatchRunOutcome(
        report=report,
        executions=executions,
        inputs=inputs_list,
        references=references,
        outputs=outputs,
        wall_time_s=wall_time_s,
        verified=verified,
        backend=getattr(impl, "name", type(impl).__name__),
    )


def list_compilers() -> List[Dict[str, str]]:
    """Every registered compiler: name, description and paper configuration."""
    rows = []
    for compiler_name in available_compilers():
        info = compiler_info(compiler_name)
        rows.append(
            {
                "name": info.name,
                "description": info.description,
                "paper_config": info.paper_config,
            }
        )
    return rows


def describe_compiler(compiler_name: str, **options: object) -> str:
    """The canonical, version-stamped cache identity of a configuration."""
    return CompilerSpec.create(compiler_name, **options).describe()


def list_backends() -> List[Dict[str, object]]:
    """Every registered execution backend: name, description, when to use."""
    rows = []
    for backend_name in available_backends():
        info = backend_info(backend_name)
        rows.append(
            {
                "name": info.name,
                "description": info.description,
                "use_when": info.use_when,
                "produces_outputs": info.produces_outputs,
            }
        )
    return rows


def describe_backend(backend_name: str, **options: object) -> str:
    """The canonical, version-stamped identity of a backend configuration."""
    return BackendSpec.create(backend_name, **options).describe()
