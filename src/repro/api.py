"""The unified compilation facade: ``repro.compile`` / ``repro.execute``.

One import gives the whole system behind names instead of hand-built
objects::

    import repro

    report = repro.compile("(* (+ a b) (+ c d))", compiler="greedy")
    outcome = repro.execute("(* (+ a b) (+ c d))", {"a": 1, "b": 2, "c": 3, "d": 4})
    batch = repro.execute_batch("(* (+ a b) (+ c d))", batch=32, backend="vector-vm")
    run = repro.run_workload("nn-linear", batch=8)
    repro.list_compilers()
    repro.list_backends()
    repro.list_workloads()

Sources may be s-expression strings (the paper's textual IR), parsed
:class:`~repro.ir.nodes.Expr` trees, or staged DSL
:class:`~repro.compiler.dsl.Program` objects.  Compilers are addressed by
registry name (with ``**options`` forwarded to the factory), by
:class:`~repro.compiler.registry.CompilerSpec`, or by a live compiler
object.  Every compilation runs through the
:class:`~repro.service.service.CompilationService`, so ``cache_dir`` gives
cross-process disk caching and ``workers`` fans batches out over a
cost-balanced process pool.  Execution runs on a named
:class:`~repro.backends.base.ExecutionBackend` (``reference``,
``vector-vm``, ``cost-sim``); ``python -m repro`` exposes the same facade on
the command line.
"""

from __future__ import annotations

import atexit
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends.base import backend_produces_outputs
from repro.backends.registry import (
    BackendSpec,
    available_backends,
    backend_info,
    get_backend,
)
from repro.compiler.dsl import Program
from repro.compiler.executor import (
    ExecutionReport,
    declared_outputs,
    reference_output,
)
from repro.compiler.pipeline import CompilationReport
from repro.compiler.registry import (
    CompilerSpec,
    available_compilers,
    compiler_info,
)
from repro.ir.analysis import variables
from repro.ir.nodes import Expr
from repro.ir.parser import parse
from repro.service.cache import CompilationCache
from repro.service.service import BatchReport, CompilationJob, CompilationService

__all__ = [
    "Source",
    "to_expression",
    "make_service",
    "compile",
    "compile_batch",
    "analyze",
    "lint",
    "execute",
    "execute_batch",
    "sample_named_inputs",
    "derive_batch_seeds",
    "RunOutcome",
    "BatchRunOutcome",
    "WorkloadRunOutcome",
    "run_workload",
    "list_workloads",
    "run_study",
    "list_components",
    "list_compilers",
    "describe_compiler",
    "list_backends",
    "describe_backend",
    "serve",
    "submit",
    "status",
    "result",
    "default_server",
    "shutdown_default_server",
    "CompilerSpec",
    "BackendSpec",
    "CompilationCache",
    "CompilationService",
]

#: Anything the facade accepts as a program: s-expression text, an IR
#: expression, or a staged DSL program.
Source = Union[str, Expr, Program]


def to_expression(source: Source) -> Tuple[Expr, Optional[str]]:
    """Normalize a source into ``(expression, suggested_name)``."""
    if isinstance(source, Program):
        return source.output_expr, source.name
    if isinstance(source, Expr):
        return source, None
    if isinstance(source, str):
        return parse(source), None
    raise TypeError(
        f"expected an s-expression string, Expr or Program, got {type(source).__name__}"
    )


def make_service(
    compiler: Union[str, CompilerSpec, object] = "greedy",
    *,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> CompilationService:
    """A :class:`CompilationService` for a named (or given) compiler."""
    if isinstance(compiler, str) and options:
        compiler = CompilerSpec.create(compiler, **options)
    elif options:
        raise ValueError("compiler options require a registry name, not an instance")
    return CompilationService(compiler, workers=workers, cache=cache, cache_dir=cache_dir)


def compile(
    source: Source,
    compiler: Union[str, CompilerSpec, object, None] = None,
    *,
    name: Optional[str] = None,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    service: Optional[CompilationService] = None,
    verify: bool = False,
    **options: object,
) -> CompilationReport:
    """Compile one program under a named compiler configuration.

    ``compiler`` defaults to ``"greedy"``.  Pass ``service=`` to reuse an
    existing :class:`CompilationService` (its compiler and cache then apply,
    so combining it with ``compiler``/``workers``/``cache`` arguments is an
    error rather than a silent override).

    Returns the same :class:`CompilationReport` (stats, costs, rewrite steps,
    pipeline trace, SEAL codegen) every compiler in the repo produces.
    """
    expr, suggested = to_expression(source)
    if service is not None:
        if compiler is not None or options or cache is not None or cache_dir is not None or workers != 1:
            raise ValueError(
                "pass either service= or compiler/options/workers/cache arguments, not both"
            )
    else:
        service = make_service(
            compiler if compiler is not None else "greedy",
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            **options,
        )
    return service.compile_expression(
        expr, name=name or suggested or "circuit", verify=verify
    )


def compile_batch(
    sources: Iterable[Union[Source, Tuple[Source, str]]],
    compiler: Union[str, CompilerSpec, object] = "greedy",
    *,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> BatchReport:
    """Compile many programs in one cost-balanced (optionally parallel) batch."""
    jobs: List[CompilationJob] = []
    for index, item in enumerate(sources):
        explicit = None
        if isinstance(item, tuple):
            item, explicit = item
        expr, suggested = to_expression(item)
        jobs.append(CompilationJob(expr=expr, name=explicit or suggested or f"circuit_{index}"))
    service = make_service(
        compiler, workers=workers, cache=cache, cache_dir=cache_dir, **options
    )
    return service.compile_batch(jobs)


@dataclass
class RunOutcome:
    """Compile + execute + verify, bundled."""

    report: CompilationReport
    execution: ExecutionReport
    inputs: Dict[str, int]
    reference: List[int]
    outputs: List[int]
    #: False when the backend produces no outputs (``cost-sim``), in which
    #: case nothing was decrypted and :attr:`correct` is vacuous.
    verified: bool = True

    @property
    def correct(self) -> bool:
        """True when the decrypted outputs match the plaintext reference.

        Vacuously true for accounting-only backends (``cost-sim``), which
        produce no outputs — check :attr:`verified` to distinguish.
        """
        return self.outputs == self.reference

    @property
    def backend(self) -> str:
        """Registry name of the backend that executed the circuit."""
        return self.execution.backend


@dataclass
class BatchRunOutcome:
    """Compile once + execute a whole batch of input sets + verify each."""

    report: CompilationReport
    executions: List[ExecutionReport]
    inputs: List[Dict[str, int]]
    references: List[List[int]]
    outputs: List[List[int]]
    #: Wall-clock seconds of the execution phase (not compilation).
    wall_time_s: float = 0.0
    #: False when the backend produces no outputs (``cost-sim``), in which
    #: case nothing was decrypted and :attr:`all_correct` is vacuous.
    verified: bool = True
    #: Registry name of the backend that executed the batch (meaningful even
    #: when the batch was empty and no reports exist).
    backend: str = "reference"

    @property
    def batch_size(self) -> int:
        return len(self.executions)

    @property
    def all_correct(self) -> bool:
        """True when every input set's outputs match its plaintext reference.

        Vacuously true for accounting-only backends — check
        :attr:`verified` to distinguish real verification from none.
        """
        return all(
            outputs == reference
            for outputs, reference in zip(self.outputs, self.references)
        )

    @property
    def throughput_per_s(self) -> float:
        """Executed input sets per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return len(self.executions) / self.wall_time_s


def sample_named_inputs(
    names: Iterable[str], seed: int, input_range: int = 7
) -> Dict[str, int]:
    """Deterministic input sampling: uniform over ``[0, input_range]``.

    The single definition of the seed-to-inputs contract — the facade and
    the job server both draw through it, so a server job with ``seed=K``
    executes exactly the inputs ``api.execute(seed=K)`` would.
    """
    rng = np.random.default_rng(seed)
    return {name: int(rng.integers(0, input_range + 1)) for name in names}


def derive_batch_seeds(seed: int, count: int) -> List[int]:
    """``count`` decorrelated per-item seeds derived from one base seed.

    The naive ``seed + offset`` scheme silently correlates adjacent batches:
    ``seed=0, batch=32`` and ``seed=1, batch=32`` would share 31 of their 32
    input sets.  Seeds are instead spawned through
    :class:`numpy.random.SeedSequence`, whose hashing keeps every
    ``(seed, offset)`` stream independent, so two base seeds never overlap.

    Each derived seed still feeds :func:`sample_named_inputs` — the one
    seed-to-inputs contract — so a server job submitted with a derived seed
    executes bit-identical inputs to the facade batch item it came from.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1, np.uint32)[0]) for child in children]


def _sample_inputs(expr: Expr, seed: int, input_range: int = 7) -> Dict[str, int]:
    return sample_named_inputs(variables(expr), seed, input_range)


def execute(
    source: Union[Source, CompilationReport],
    inputs: Optional[Mapping[str, int]] = None,
    compiler: Union[str, CompilerSpec, object, None] = None,
    *,
    backend: Union[str, BackendSpec, object, None] = None,
    seed: int = 0,
    input_range: int = 7,
    name: Optional[str] = None,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> RunOutcome:
    """Compile (unless given a report) and run on a simulated BFV backend.

    ``backend`` names the execution backend (``reference`` by default;
    ``vector-vm`` for the batched tape VM, ``cost-sim`` for accounting
    only).  Missing ``inputs`` are drawn deterministically from ``seed``,
    uniformly over ``[0, input_range]`` per variable.  Output-producing
    backends are always verified against the plaintext reference (see
    :attr:`RunOutcome.correct`); accounting-only backends skip verification
    because they decrypt nothing.
    """
    if isinstance(source, CompilationReport):
        report = source
    else:
        report = compile(
            source,
            compiler,
            name=name,
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            **options,
        )
    expr = report.source_expr
    if inputs is None:
        inputs = _sample_inputs(expr, seed=seed, input_range=input_range)
    inputs = {key: int(value) for key, value in inputs.items()}
    impl = get_backend(backend)
    execution = impl.execute(report.circuit, inputs)
    verified = backend_produces_outputs(impl)
    if verified:
        from repro.ir.evaluate import output_arity

        reference = reference_output(
            expr, inputs, slot_count=max(64, output_arity(expr) + 8)
        )
        outputs = declared_outputs(report.circuit, execution.outputs)
    else:
        reference = []
        outputs = []
    return RunOutcome(
        report=report,
        execution=execution,
        inputs=inputs,
        reference=reference,
        outputs=outputs,
        verified=verified,
    )


def execute_batch(
    source: Union[Source, CompilationReport],
    inputs: Optional[Sequence[Mapping[str, int]]] = None,
    compiler: Union[str, CompilerSpec, object, None] = None,
    *,
    batch: int = 8,
    backend: Union[str, BackendSpec, object, None] = None,
    seed: int = 0,
    input_range: int = 7,
    name: Optional[str] = None,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> BatchRunOutcome:
    """Compile once and execute a whole batch of input sets.

    ``inputs`` is a sequence of input dicts; when omitted, ``batch`` input
    sets are drawn deterministically from per-item seeds spawned off
    ``seed`` (:func:`derive_batch_seeds` — different base seeds never share
    input sets), uniformly over ``[0, input_range]`` per variable.  The
    batch executes
    through the backend's ``execute_many`` — one pass over the vector VM's
    instruction tape serves the entire batch — and each input set is
    verified against its own plaintext reference.
    """
    if isinstance(source, CompilationReport):
        report = source
    else:
        report = compile(
            source,
            compiler,
            name=name,
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            **options,
        )
    expr = report.source_expr
    if inputs is None:
        if batch < 1:
            raise ValueError("batch must be at least 1")
        inputs_list = [
            _sample_inputs(expr, seed=item_seed, input_range=input_range)
            for item_seed in derive_batch_seeds(seed, batch)
        ]
    else:
        inputs_list = [
            {key: int(value) for key, value in mapping.items()} for mapping in inputs
        ]
    impl = get_backend(backend)
    start = time.perf_counter()
    executions = impl.execute_many(report.circuit, inputs_list)
    wall_time_s = time.perf_counter() - start
    verified = backend_produces_outputs(impl)
    if verified:
        from repro.ir.evaluate import output_arity

        slot_count = max(64, output_arity(expr) + 8)
        references = [
            reference_output(expr, item, slot_count=slot_count) for item in inputs_list
        ]
        outputs = [
            declared_outputs(report.circuit, execution.outputs)
            for execution in executions
        ]
    else:
        references = [[] for _ in inputs_list]
        outputs = [[] for _ in inputs_list]
    return BatchRunOutcome(
        report=report,
        executions=executions,
        inputs=inputs_list,
        references=references,
        outputs=outputs,
        wall_time_s=wall_time_s,
        verified=verified,
        backend=getattr(impl, "name", type(impl).__name__),
    )


# ---------------------------------------------------------------------------
# The job-orchestration server surface: serve / submit / status / result.
# ---------------------------------------------------------------------------

_default_server = None
_default_server_lock = threading.Lock()


def serve(
    state_dir: Optional[str] = None,
    *,
    backend: Optional[str] = None,
    compiler: str = "greedy",
    workers: int = 1,
    compile_workers: int = 1,
    cache_dir: Optional[str] = None,
    poll_interval: float = 0.05,
    queue_capacity: Optional[int] = None,
    per_priority_capacity: Optional[int] = None,
    aging_interval_s: Optional[float] = None,
    slo=None,
    admission: str = "off",
    tracing: bool = False,
    start: bool = True,
):
    """A :class:`~repro.server.server.JobServer` for this process.

    ``state_dir`` roots the persistent job store (the queue survives
    restarts there, and ``repro submit --state-dir`` reaches it from other
    processes); None keeps everything in memory.  With ``start=True`` (the
    default) the scheduling loop runs in a background thread — submit jobs
    and block on :func:`result`; with ``start=False`` drive it yourself via
    ``server.drain()`` / ``server.tick()``.

    The overload knobs (``queue_capacity``, ``per_priority_capacity``,
    ``aging_interval_s``, ``slo``, ``admission``) pass straight through to
    :class:`~repro.server.server.JobServer`; their defaults keep the server
    unbounded and admission-free.  ``tracing=True`` turns on end-to-end span
    tracing (written to ``traces.jsonl`` under ``state_dir``; see
    :mod:`repro.obs` and ``repro trace``).
    """
    from repro.server.server import JobServer

    server = JobServer(
        state_dir,
        backend=backend,
        compiler=compiler,
        workers=workers,
        compile_workers=compile_workers,
        cache_dir=cache_dir,
        poll_interval=poll_interval,
        queue_capacity=queue_capacity,
        per_priority_capacity=per_priority_capacity,
        aging_interval_s=aging_interval_s,
        slo=slo,
        admission=admission,
        tracing=tracing,
    )
    if start:
        server.start()
    return server


def default_server():
    """The process-wide in-memory server ``submit``/``result`` fall back to.

    Created (and started) lazily on first use; closed at interpreter exit.
    """
    global _default_server
    with _default_server_lock:
        if _default_server is None:
            _default_server = serve(poll_interval=0.005, start=True)
            atexit.register(shutdown_default_server)
        return _default_server


def shutdown_default_server() -> None:
    """Close the process-wide default server (no-op when never created)."""
    global _default_server
    with _default_server_lock:
        server, _default_server = _default_server, None
    if server is not None:
        server.close()


def _client(server: Optional[object], state_dir: Optional[str]):
    """Resolve the in-process server a client call should talk to."""
    if server is not None and state_dir is not None:
        raise ValueError("pass either server= or state_dir=, not both")
    if server is not None:
        return server
    if state_dir is None:
        return default_server()
    return None


def submit(
    source: Union[Source, None] = None,
    inputs: Optional[Mapping[str, int]] = None,
    compiler: Optional[str] = None,
    *,
    kind: str = "execute",
    backend: Optional[str] = None,
    seed: int = 0,
    input_range: int = 7,
    priority: int = 0,
    max_retries: int = 0,
    name: Optional[str] = None,
    server: Optional[object] = None,
    state_dir: Optional[str] = None,
    **options: object,
) -> str:
    """Queue a compile/execute job; returns the job id immediately.

    Three targets, in precedence order: an explicit ``server`` object (an
    in-process :class:`~repro.server.server.JobServer`), a ``state_dir``
    (appends a queued record to that directory's store — the running
    ``repro serve`` process picks it up), or the process-wide
    :func:`default_server`.
    """
    from repro.server.jobs import Job
    from repro.server.store import JobStore

    expr, suggested = to_expression(source)
    from repro.ir.printer import to_sexpr

    job = Job(
        kind=kind,
        source=to_sexpr(expr),
        compiler=compiler,
        compiler_options=dict(options),
        backend=backend,
        inputs={key: int(value) for key, value in inputs.items()} if inputs else None,
        seed=seed,
        input_range=input_range,
        priority=priority,
        max_retries=max_retries,
        name=name or suggested,
    )
    target = _client(server, state_dir)
    if target is not None:
        return target.submit(job)
    JobStore(state_dir).append(job)
    return job.id


def status(
    job_id: str,
    *,
    server: Optional[object] = None,
    state_dir: Optional[str] = None,
) -> Dict[str, object]:
    """The compact status row of one submitted job."""
    from repro.server.store import JobStore

    target = _client(server, state_dir)
    if target is not None:
        return target.status(job_id)
    jobs = JobStore(state_dir).replay()
    if job_id not in jobs:
        raise KeyError(f"unknown job id {job_id!r}")
    return jobs[job_id].summary()


def result(
    job_id: str,
    *,
    server: Optional[object] = None,
    state_dir: Optional[str] = None,
    wait: bool = True,
    timeout: Optional[float] = 60.0,
) -> Dict[str, object]:
    """The result payload of a job (blocking until terminal by default).

    For ``state_dir`` targets the store is re-read on a short poll loop
    (the serving process updates it); for in-process servers the call blocks
    on the server's completion condition.
    """
    from repro.server.jobs import JobState
    from repro.server.store import JobStore

    target = _client(server, state_dir)
    if target is not None:
        return target.result(job_id, wait=wait, timeout=timeout)
    deadline = None if timeout is None else time.monotonic() + timeout
    # One replay, then incremental polls: the serving process appends a few
    # records per job, so re-reading the whole log 20x/s would be O(polls x
    # log size) while waiting.
    store = JobStore(state_dir)
    jobs = store.replay()
    if job_id not in jobs:
        raise KeyError(f"unknown job id {job_id!r}")
    while True:
        job = jobs[job_id]
        if job.status is JobState.FAILED:
            raise RuntimeError(f"job {job_id} failed: {job.error}")
        if job.status is JobState.SHED:
            raise RuntimeError(f"job {job_id} was shed: {job.error}")
        if job.status is JobState.COMPLETED:
            return job.result or {}
        if not wait:
            raise RuntimeError(f"job {job_id} is {job.status.value}; pass wait=True")
        if deadline is not None and time.monotonic() >= deadline:
            raise TimeoutError(f"job {job_id} still {job.status.value} after {timeout}s")
        time.sleep(0.05)
        for fresh in store.poll():
            jobs[fresh.id] = fresh


@dataclass
class WorkloadRunOutcome:
    """One registered workload run end to end: batch outcome + oracle check."""

    #: The workload that ran (source, sampler, oracle, defaults).
    workload: object
    #: The underlying compile-once / execute-batch / verify outcome.
    outcome: BatchRunOutcome
    #: Expected outputs per input set, from the workload's oracle (falls
    #: back to the plaintext reference when no independent oracle exists).
    expected: List[List[int]]

    @property
    def oracle_correct(self) -> bool:
        """True when every executed output matches the workload's oracle.

        Vacuously true for accounting-only backends — check
        ``outcome.verified`` to distinguish.
        """
        if not self.outcome.verified:
            return True
        return self.outcome.outputs == self.expected

    @property
    def all_correct(self) -> bool:
        """Reference verification of the underlying batch outcome."""
        return self.outcome.all_correct


def run_workload(
    workload: object,
    *,
    batch: int = 8,
    seed: int = 0,
    compiler: Union[str, CompilerSpec, object, None] = None,
    backend: Union[str, BackendSpec, object, None] = None,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
    cache_dir: Optional[str] = None,
    **options: object,
) -> WorkloadRunOutcome:
    """Run one registered workload end to end and check it against its oracle.

    ``workload`` is a registry name (``"dot-product"``; ``**options``
    forward to the workload factory, e.g. ``size=16``) or a built
    :class:`~repro.workloads.registry.Workload`.  The workload's default
    compiler and backend apply unless overridden.  ``batch`` input sets are
    sampled from per-item seeds spawned off ``seed``
    (:func:`derive_batch_seeds`), executed through :func:`execute_batch`,
    and compared against both the plaintext reference and the workload's
    expected-output oracle.
    """
    from repro.workloads.registry import get_workload

    resolved = get_workload(workload, **options)
    inputs = [
        sample_named_inputs(resolved.input_names, item_seed, resolved.input_range)
        for item_seed in derive_batch_seeds(seed, batch)
    ]
    outcome = execute_batch(
        resolved.source,
        inputs=inputs,
        compiler=compiler if compiler is not None else resolved.compiler,
        backend=backend if backend is not None else resolved.backend,
        name=resolved.name,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    expected = [resolved.expected(item) for item in inputs]
    return WorkloadRunOutcome(workload=resolved, outcome=outcome, expected=expected)


def list_workloads() -> List[Dict[str, object]]:
    """Every registered workload: name, suite, description and defaults."""
    from repro.workloads.registry import available_workloads, workload_info

    rows = []
    for workload_name in available_workloads():
        info = workload_info(workload_name)
        built = info.build()
        rows.append(
            {
                "name": info.name,
                "suite": info.suite or built.suite,
                "description": info.description,
                "circuit": built.name,
                "inputs": len(built.input_names),
                "input_range": built.input_range,
                "compiler": built.compiler,
                "backend": built.backend,
                "has_oracle": built.oracle is not None,
            }
        )
    return rows


def run_study(
    study_dir: str,
    *,
    name: str = "system-ablation",
    components: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    replicates: int = 3,
    jobs_per_replicate: int = 8,
    seed: int = 0,
    workers: int = 2,
    resume: bool = False,
    max_runs: Optional[int] = None,
    resamples: int = 2000,
    progress: Optional[object] = None,
) -> Dict[str, object]:
    """Run (or resume) an ablation study and return its analysed report.

    A study executes one *baseline* condition plus one single-delta
    condition per component (:func:`list_components`), ``replicates``
    independently seeded runs each, every run a fresh
    :class:`~repro.server.server.JobServer` driving ``jobs_per_replicate``
    workload jobs through the production stack.  Progress persists as JSONL
    under ``study_dir``, so an interrupted study picks up where it left off:
    call again with ``resume=True`` (the spec is reloaded from the study
    log) and finished replicates are skipped, not re-executed.

    The returned report carries per-condition metric summaries plus
    per-component importance scores — the relative change of the primary
    metric when the component is removed — with bootstrap confidence
    intervals and a most-important-first ranking
    (:func:`repro.studies.analysis.study_report`).  ``max_runs`` caps how
    many pending runs this call executes (the kill/resume tests use it);
    the report then covers only the recorded prefix and the payload's
    ``progress.complete`` is False.
    """
    from repro.studies import StudyRunner, StudySpec, load_study_spec, study_report
    from repro.studies.spec import RunConfig

    if resume:
        spec = load_study_spec(study_dir)
        if spec is None:
            raise ValueError(
                f"no resumable study under {study_dir!r} (missing study.jsonl header)"
            )
    else:
        spec = StudySpec(
            name=name,
            components=tuple(components) if components else (),
            workloads=tuple(workloads) if workloads else ("dot-product", "max-tree"),
            replicates=replicates,
            jobs_per_replicate=jobs_per_replicate,
            seed=seed,
            base_config=RunConfig(workers=workers),
        )
    runner = StudyRunner(spec, study_dir)
    outcome = runner.run(max_runs=max_runs, progress=progress)
    report = study_report(
        spec.as_dict(), runner.load_records(), seed=spec.seed, resamples=resamples
    )
    report["study_dir"] = study_dir
    report["progress"] = outcome.as_dict()
    return report


def list_components() -> List[Dict[str, object]]:
    """Every registered ablatable component: name, description, overrides."""
    from repro.studies import available_components, get_component

    return [get_component(name).as_dict() for name in available_components()]


def list_compilers() -> List[Dict[str, str]]:
    """Every registered compiler: name, description and paper configuration."""
    rows = []
    for compiler_name in available_compilers():
        info = compiler_info(compiler_name)
        rows.append(
            {
                "name": info.name,
                "description": info.description,
                "paper_config": info.paper_config,
            }
        )
    return rows


def describe_compiler(compiler_name: str, **options: object) -> str:
    """The canonical, version-stamped cache identity of a configuration."""
    return CompilerSpec.create(compiler_name, **options).describe()


def list_backends() -> List[Dict[str, object]]:
    """Every registered execution backend: name, description, when to use."""
    rows = []
    for backend_name in available_backends():
        info = backend_info(backend_name)
        rows.append(
            {
                "name": info.name,
                "description": info.description,
                "use_when": info.use_when,
                "produces_outputs": info.produces_outputs,
            }
        )
    return rows


def describe_backend(backend_name: str, **options: object) -> str:
    """The canonical, version-stamped identity of a backend configuration."""
    return BackendSpec.create(backend_name, **options).describe()


def analyze(
    source: Source,
    compiler: Union[str, CompilerSpec, object, None] = None,
    *,
    name: Optional[str] = None,
    degree: int = 1024,
    input_bounds: Optional[Sequence[int]] = None,
    opt_level: int = 2,
    **options: object,
) -> Tuple[CompilationReport, object]:
    """Statically verify one program end to end; returns ``(report, analysis)``.

    Two verifier families run (:mod:`repro.analysis`):

    * the **pipeline validators** — the compilation re-runs with
      ``verify=True``, so every pass of the compiler's
      :class:`~repro.compiler.framework.PassPipeline` is followed by the
      expression/circuit structural checks, findings attributed to the
      stage that introduced them;
    * the **tape verifier** (``opt_level >= 1``) — the circuit is compiled
      to the vector VM's executable tape and checked for register-arena
      safety, output coverage, reduction-schedule soundness under every
      input-magnitude bucket of ``input_bounds``, fusion legality and
      symbolic equivalence against the source circuit.  ``opt_level=0``
      (the legacy interpreter, which runs the instruction list as written)
      skips the tape stage.

    The returned analysis is a merged
    :class:`~repro.analysis.AnalysisReport`; ``analysis.ok`` is False iff
    any ERROR finding surfaced.
    """
    from repro.analysis import AnalysisReport
    from repro.analysis.tape_check import DEFAULT_BOUNDS, verify_tape
    from repro.backends.tapeopt import compile_tape
    from repro.fhe.params import BFVParameters

    expr, suggested = to_expression(source)
    report = compile(
        expr,
        compiler,
        name=name or suggested or "circuit",
        verify=True,
        **options,
    )
    merged = AnalysisReport()
    if report.analysis is not None:
        merged.merge(report.analysis)
    if opt_level >= 1:
        params = BFVParameters.default(degree)
        tape = compile_tape(report.circuit, params)
        bounds = tuple(input_bounds) if input_bounds else DEFAULT_BOUNDS
        merged.merge(
            verify_tape(
                report.circuit, tape, input_bounds=bounds, location=report.name
            )
        )
    return report, merged


def lint(
    paths: Optional[Sequence[str]] = None, *, root: Optional[str] = None
) -> Tuple[object, int]:
    """Run the codebase concurrency/hygiene lint; ``(report, files_checked)``.

    Checks ``# guarded-by:`` lock discipline, wall-clock/unseeded-randomness
    use on deterministic paths, and Python hygiene (bare ``except``, mutable
    default arguments) over ``paths`` — by default the installed ``repro``
    package itself (:func:`repro.analysis.lint.default_target`).
    """
    from repro.analysis.lint import lint_paths

    return lint_paths(paths, root=root)
