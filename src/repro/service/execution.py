"""The batched execution service with timer-augmented scheduling.

:class:`ExecutionService` is the execution-side counterpart of
:class:`~repro.service.service.CompilationService`: it wraps any registered
:class:`~repro.backends.base.ExecutionBackend` and schedules batches of
``(circuit, input sets)`` jobs across workers.

Scheduling weights follow the timer-augmented cost-function idea from the
load-balancing literature (McDoniel & Bientinesi): an analytical model gets
the first batch placed, but *measured* per-circuit execution times are
recorded (exponentially-weighted, keyed by circuit content hash and backend
``describe()`` string) and preferred over the model whenever a circuit has
run before.  Model estimates for still-unmeasured circuits are calibrated by
the observed measured/model ratio, so mixed batches keep comparable weights.
Jobs are then packed largest-first (LPT, the same
:func:`~repro.service.scheduler.partition_jobs` the compilation service
uses) so one deep circuit cannot serialize the whole batch.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.backends.base import program_fingerprint
from repro.backends.registry import BackendSpec, resolve_backend
from repro.compiler.circuit import CircuitProgram
from repro.compiler.executor import ExecutionReport, Value
from repro.fhe.latency import LatencyModel
from repro.fhe.params import BFVParameters
from repro.obs.trace import NULL_TRACER, Tracer
from repro.service.scheduler import makespan, partition_jobs

__all__ = ["ExecutionJob", "ExecutionRecord", "ExecutionBatchReport", "ExecutionService"]


@dataclass
class ExecutionJob:
    """One unit of execution work: a circuit plus one or more input sets."""

    program: CircuitProgram
    inputs: Sequence[Mapping[str, Value]]
    name: Optional[str] = None

    def label(self) -> str:
        return self.name or self.program.name


@dataclass
class ExecutionRecord:
    """Per-job accounting emitted by :meth:`ExecutionService.run_jobs`."""

    name: str
    #: Scheduling weight used for this job (milliseconds, per input set).
    estimate_ms: float
    #: ``"measured"`` when a recorded timer drove the weight, ``"model"``
    #: when the analytical latency model did.
    estimate_source: str
    wall_time_s: float = 0.0
    batch_size: int = 0
    worker: int = 0


@dataclass
class ExecutionBatchReport:
    """Aggregate result of one :meth:`ExecutionService.run_jobs` call."""

    backend: str
    records: List[ExecutionRecord] = field(default_factory=list)
    #: One report list per job, in input order.
    reports: List[List[ExecutionReport]] = field(default_factory=list)
    wall_time_s: float = 0.0
    workers: int = 1
    #: Estimated makespan of the schedule (sum of weights on the largest bin).
    planned_makespan_ms: float = 0.0

    @property
    def total_executions(self) -> int:
        return sum(record.batch_size for record in self.records)

    def as_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "jobs": len(self.records),
            "executions": self.total_executions,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "planned_makespan_ms": self.planned_makespan_ms,
            "measured_estimates": sum(
                1 for record in self.records if record.estimate_source == "measured"
            ),
        }


class ExecutionService:
    """Batched, timer-augmented-scheduled execution on a named backend.

    Parameters
    ----------
    backend:
        Registry name (``"vector-vm"``), :class:`BackendSpec` or live backend
        object; None follows the ``REPRO_BACKEND``/``reference`` default.
    params:
        BFV parameters every execution runs under (defaults to the paper's).
    workers:
        Thread workers for :meth:`run_jobs`.  Execution is numpy-dominated,
        so threads overlap usefully; ``1`` keeps runs serial.
    smoothing:
        EWMA factor for measured execution times (1.0 = keep only the latest
        measurement).
    calibration_smoothing:
        EWMA factor for the measured/model calibration ratio.  The ratio is
        folded in only on a circuit's *first* measurement (re-measurements
        of an already-timed circuit say nothing new about the model), so on
        a long-running server it tracks the current timing regime instead of
        being dominated by stale early history the way a pair of unbounded
        running sums would be.
    max_measured:
        LRU capacity of the measured-time table.  A long-running server
        replays an unbounded stream of circuits through one service, so the
        table is bounded: beyond ``max_measured`` distinct circuits the
        least-recently-touched entry (read *or* updated) is evicted and that
        circuit falls back to the calibrated analytical model until it runs
        again.
    prefer_measured:
        When False the timer augmentation is switched off: every estimate
        comes from the *uncalibrated* analytical latency model, exactly the
        pre-McDoniel baseline.  Measurements are still recorded (the tables
        stay observable) but never drive a scheduling weight.  The ablation
        engine flips this to price the timer-augmented scheduler.
    tracer:
        Span collector for the ``schedule`` (estimate + LPT partition) and
        per-plan-entry ``execute`` stages of :meth:`run_jobs`.  Defaults to
        the disabled singleton: direct-path callers pay nothing.
    """

    def __init__(
        self,
        backend: Union[str, BackendSpec, object, None] = None,
        *,
        params: Optional[BFVParameters] = None,
        workers: int = 1,
        smoothing: float = 0.5,
        calibration_smoothing: float = 0.25,
        max_measured: int = 1024,
        prefer_measured: bool = True,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if not 0.0 < calibration_smoothing <= 1.0:
            raise ValueError("calibration_smoothing must be in (0, 1]")
        if max_measured < 1:
            raise ValueError("max_measured must be at least 1")
        self.backend, self.spec = resolve_backend(backend)
        self.backend_name = getattr(self.backend, "name", type(self.backend).__name__)
        self.params = params if params is not None else BFVParameters.default()
        self.workers = workers
        self.smoothing = smoothing
        self.calibration_smoothing = calibration_smoothing
        self.max_measured = max_measured
        self.prefer_measured = prefer_measured
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._latency_model = LatencyModel(self.params)
        #: Measured per-input-set wall seconds, EWMA per circuit, bounded LRU.
        self._measured: "OrderedDict[str, float]" = OrderedDict()  # guarded-by: _measured_lock
        self._measured_lock = threading.Lock()
        #: EWMA of the measured/model ratio, updated on first measurements
        #: only; None until the first circuit has been timed.
        self._calibration: Optional[float] = None  # guarded-by: _measured_lock

    # -- cache keys ---------------------------------------------------------
    def job_key(self, program: CircuitProgram) -> str:
        """Measured-time key: backend ``describe()`` + circuit content hash.

        The backend spec's version-stamped description keys the execution
        side exactly the way compiler ``describe()`` strings key the
        compilation cache: timings never leak across backends, backend
        configurations or package versions.
        """
        prefix = self.spec.describe() if self.spec is not None else self.backend_name
        return f"{prefix}::{program_fingerprint(program)}"

    # -- estimates ----------------------------------------------------------
    def static_cost_ms(self, program: CircuitProgram) -> float:
        """Analytical scheduling cost of one input set, in milliseconds.

        Backends that run something other than the raw instruction list can
        expose ``scheduling_cost_ms(program, params, latency_model)`` — the
        tape-compiled vector VM scales the model by its fused-tape op ratio —
        and the service prices estimates and calibration against what the
        backend will actually execute.  Everything else falls back to the
        circuit's plain :meth:`~CircuitProgram.estimated_latency_ms`.
        """
        hook = getattr(self.backend, "scheduling_cost_ms", None)
        if hook is not None:
            return hook(program, self.params, self._latency_model)
        return program.estimated_latency_ms(self._latency_model)

    def estimate_ms(self, program: CircuitProgram) -> Tuple[float, str]:
        """Scheduling weight for one input set: ``(milliseconds, source)``.

        Prefers the recorded timer for circuits that have executed before;
        falls back to the analytical latency model, scaled by the observed
        measured/model calibration ratio so mixed batches stay comparable.
        With ``prefer_measured=False`` the raw analytical model answers
        unconditionally.
        """
        if not self.prefer_measured:
            return self.static_cost_ms(program), "model"
        key = self.job_key(program)
        with self._measured_lock:
            measured = self._measured.get(key)
            if measured is not None:
                self._measured.move_to_end(key)  # LRU touch
                return measured * 1000.0, "measured"
            calibration = self._calibration
        model_ms = self.static_cost_ms(program)
        if calibration is not None:
            return model_ms * calibration, "model"
        return model_ms, "model"

    def record_measurement(
        self, program: CircuitProgram, wall_time_s: float, batch_size: int
    ) -> None:
        """Fold a measured execution time into the scheduling state."""
        if batch_size <= 0:
            return
        per_item = wall_time_s / batch_size
        key = self.job_key(program)
        model_ms = self.static_cost_ms(program)
        with self._measured_lock:
            previous = self._measured.get(key)
            if previous is None:
                self._measured[key] = per_item
                # First measurement of this circuit: fold its measured/model
                # ratio into the calibration EWMA.  Re-measurements are
                # deliberately excluded — they carry no new information
                # about the *model*, and folding them in would let a few
                # hot circuits (or stale early history) dominate the ratio
                # on a long-running server.
                if model_ms > 0.0:
                    ratio = (per_item * 1000.0) / model_ms
                    if self._calibration is None:
                        self._calibration = ratio
                    else:
                        beta = self.calibration_smoothing
                        self._calibration = (
                            beta * ratio + (1.0 - beta) * self._calibration
                        )
            else:
                alpha = self.smoothing
                self._measured[key] = alpha * per_item + (1.0 - alpha) * previous
            self._measured.move_to_end(key)
            while len(self._measured) > self.max_measured:
                self._measured.popitem(last=False)

    @property
    def measured_circuits(self) -> int:
        """How many distinct circuits have recorded timers."""
        with self._measured_lock:
            return len(self._measured)

    # -- execution ----------------------------------------------------------
    def execute(
        self, program: CircuitProgram, inputs: Mapping[str, Value]
    ) -> ExecutionReport:
        """Execute one input set, recording its measured time."""
        start = time.perf_counter()
        report = self.backend.execute(program, inputs, params=self.params)
        self.record_measurement(program, time.perf_counter() - start, 1)
        return report

    def execute_many(
        self, program: CircuitProgram, inputs_list: Sequence[Mapping[str, Value]]
    ) -> List[ExecutionReport]:
        """Execute a batch of input sets, recording the measured time."""
        start = time.perf_counter()
        reports = self.backend.execute_many(program, list(inputs_list), params=self.params)
        if reports:
            self.record_measurement(program, time.perf_counter() - start, len(reports))
        return reports

    def run_jobs(
        self,
        jobs: Iterable[Union[ExecutionJob, Tuple[CircuitProgram, Sequence[Mapping[str, Value]]]]],
    ) -> ExecutionBatchReport:
        """Execute many circuits' batches under the timer-augmented schedule.

        Jobs may be :class:`ExecutionJob` or ``(program, inputs_list)``
        pairs.  Reports come back in input order regardless of schedule.
        """
        start = time.perf_counter()
        # Capture the caller's span context up front: plans may run on pool
        # threads whose thread-local span stacks are empty, so the per-plan
        # "execute" spans parent explicitly to whatever was open here (the
        # server's tick envelope) instead of rooting stray traces.
        context = self.tracer.current_span() if self.tracer.enabled else None
        trace_id = context.trace_id if context is not None else None
        parent_id = context.span_id if context is not None else None
        with self.tracer.span(
            "schedule", trace_id=trace_id, parent_id=parent_id
        ) as schedule_span:
            normalized = [self._normalize_job(job) for job in jobs]
            batch = ExecutionBatchReport(backend=self.backend_name, workers=self.workers)
            batch.reports = [[] for _ in normalized]
            weights: List[float] = []
            for job in normalized:
                estimate, source = self.estimate_ms(job.program)
                weight = estimate * max(len(job.inputs), 1)
                weights.append(weight)
                batch.records.append(
                    ExecutionRecord(
                        name=job.label(),
                        estimate_ms=estimate,
                        estimate_source=source,
                        batch_size=len(job.inputs),
                    )
                )

            plans = partition_jobs(weights, min(self.workers, max(len(normalized), 1)))
            batch.planned_makespan_ms = makespan(plans)
            schedule_span.set_attr("jobs", len(normalized))
            schedule_span.set_attr("planned_makespan_ms", batch.planned_makespan_ms)

        def run_plan(plan) -> None:
            for index in plan.job_indices:
                job = normalized[index]
                with self.tracer.span(
                    "execute",
                    trace_id=trace_id,
                    parent_id=parent_id,
                    attrs={
                        "backend": self.backend_name,
                        "batch": len(job.inputs),
                        "worker": plan.worker,
                        "name": job.label(),
                    },
                ):
                    job_start = time.perf_counter()
                    reports = self.backend.execute_many(
                        job.program, list(job.inputs), params=self.params
                    )
                    wall = time.perf_counter() - job_start
                if reports:
                    self.record_measurement(job.program, wall, len(reports))
                batch.reports[index] = reports
                batch.records[index].wall_time_s = wall
                batch.records[index].worker = plan.worker

        active = [plan for plan in plans if plan.job_indices]
        if self.workers > 1 and len(active) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(active)) as pool:
                list(pool.map(run_plan, active))
        else:
            for plan in active:
                run_plan(plan)

        batch.wall_time_s = time.perf_counter() - start
        return batch

    @staticmethod
    def _normalize_job(
        job: Union[ExecutionJob, Tuple[CircuitProgram, Sequence[Mapping[str, Value]]]]
    ) -> ExecutionJob:
        if isinstance(job, ExecutionJob):
            return job
        program, inputs = job
        return ExecutionJob(program=program, inputs=list(inputs))
