"""The parallel, cached compilation service.

:class:`CompilationService` wraps any compiler object exposing
``compile_expression(expr, name) -> CompilationReport`` (the pipeline
:class:`~repro.compiler.pipeline.Compiler`, the Coyote baseline, an
RL-agent-wrapped compiler, ...) and adds two orthogonal production
capabilities:

1. **Content-addressed caching** — every compilation is keyed by a canonical
   hash of ``(expression, compiler configuration)`` (see
   :mod:`repro.service.cache`); repeated harness or ablation runs skip
   recompilation entirely.
2. **Cost-aware parallel batch compilation** — :meth:`compile_batch` fans
   independent jobs out across a process pool, packing jobs onto workers
   largest-first by their analytical :class:`~repro.core.cost.CostModel`
   estimate (see :mod:`repro.service.scheduler`) so the slowest worker stops
   dominating wall-clock time.

The service degrades gracefully: with ``workers=1`` (the default) every job
runs serially in-process, and when the compiler cannot be pickled for the
process pool (e.g. it closes over a live RL agent holding unpicklable
state), the batch transparently falls back to serial execution and records
why in the :class:`BatchReport`.  Compilation is deterministic, so parallel
and serial runs produce bit-identical circuit statistics.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.compiler.circuit import CircuitProgram
from repro.compiler.pipeline import CompilationReport, Compiler, CompilerOptions
from repro.compiler.registry import CompilerSpec, resolve_compiler
from repro.core.cost import CostModel
from repro.ir.nodes import Expr
from repro.service.cache import CompilationCache, cache_key, compiler_fingerprint
from repro.service.scheduler import partition_jobs

__all__ = ["CompilationJob", "JobRecord", "BatchReport", "CompilationService"]


@dataclass(frozen=True)
class CompilationJob:
    """One unit of work: an IR expression and the name of its circuit."""

    expr: Expr
    name: str = "circuit"


@dataclass
class JobRecord:
    """Per-job accounting emitted by :meth:`CompilationService.compile_batch`."""

    name: str
    estimated_cost: float
    cache_hit: bool
    compile_time_s: float
    worker: int  # -1 for cache hits and dedups, 0 for serial, >= 0 for pool workers
    #: True when this job shared an expression with an earlier job in the
    #: same batch and reused its report instead of compiling or hitting the
    #: cross-batch cache.
    deduplicated: bool = False


@dataclass
class BatchReport:
    """Aggregate result of one batch compilation."""

    reports: List[CompilationReport] = field(default_factory=list)
    records: List[JobRecord] = field(default_factory=list)
    #: Wall-clock time of the whole batch (lookup + scheduling + compilation).
    wall_time_s: float = 0.0
    #: Sum of the individual compile times (the serial-equivalent work).
    total_compile_time_s: float = 0.0
    #: Worker processes used for the compile phase (1 == serial).
    workers: int = 1
    #: Why the batch ran serially despite ``workers > 1`` (None otherwise).
    serial_fallback_reason: Optional[str] = None

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cache_hit)

    @property
    def parallel_speedup(self) -> float:
        """Serial-equivalent compile time over actual wall time."""
        if self.wall_time_s <= 0.0:
            return 1.0
        return self.total_compile_time_s / self.wall_time_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": len(self.records),
            "cache_hits": self.cache_hits,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "total_compile_time_s": self.total_compile_time_s,
            "parallel_speedup": self.parallel_speedup,
            "serial_fallback_reason": self.serial_fallback_reason,
        }


def _rename_report(report: CompilationReport, name: str) -> CompilationReport:
    """A shallow copy of a cached report carrying the requested circuit name.

    The cache is keyed by ``(expression, configuration)`` only, so one entry
    can serve the same kernel under several benchmark names.
    """
    if report.name == name:
        return report
    circuit = report.circuit
    renamed_circuit = CircuitProgram(
        name=name,
        instructions=circuit.instructions,
        outputs=circuit.outputs,
        scalar_inputs=circuit.scalar_inputs,
    )
    return replace(report, name=name, circuit=renamed_circuit)


def _compile_plan(payload: bytes) -> List[CompilationReport]:
    """Process-pool worker: compile one worker's jobs with its own compiler.

    The compiler and jobs travel pickled in a single payload so the function
    itself stays module-level (a requirement for pickling the callable).
    """
    compiler, jobs = pickle.loads(payload)
    return [compiler.compile_expression(job.expr, name=job.name) for job in jobs]


class CompilationService:
    """Cached, cost-aware-parallel front end to any CHEHAB-style compiler.

    Parameters
    ----------
    compiler:
        Any object with ``compile_expression(expr, name)``, a registry name
        (``"coyote"``), or a :class:`~repro.compiler.registry.CompilerSpec`.
        Names and specs are resolved through the compiler registry and keyed
        by their canonical ``describe()`` string, which makes their cache
        entries stable across processes (disk-tier eligible).  When None, a
        pipeline :class:`Compiler` is built from ``options``.
    workers:
        Worker processes for :meth:`compile_batch`.  ``1`` (default) keeps
        everything serial and in-process.
    cache:
        A shared :class:`CompilationCache`; when None a private in-memory
        cache is created (``cache_dir`` adds the on-disk tier to it).
    cost_model:
        Cost model used as the scheduling weight; defaults to the compiler's
        own cost model when discoverable.
    """

    def __init__(
        self,
        compiler: Optional[object] = None,
        *,
        options: Optional[CompilerOptions] = None,
        workers: int = 1,
        cache: Optional[CompilationCache] = None,
        cache_dir: Optional[str] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        spec: Optional[CompilerSpec] = None
        if compiler is None:
            compiler = Compiler(options)
        else:
            if options is not None:
                raise ValueError("pass either a compiler or options, not both")
            compiler, spec = resolve_compiler(compiler)
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if not hasattr(compiler, "compile_expression"):
            raise TypeError("compiler must expose compile_expression(expr, name)")
        self.compiler = compiler
        self.spec = spec
        self.workers = workers
        self.cache = cache if cache is not None else CompilationCache(directory=cache_dir)
        self.cost_model = cost_model if cost_model is not None else self._discover_cost_model()
        if spec is not None and spec.stable:
            self._fingerprint, self._stable = spec.describe(), True
        else:
            # Covers both plain compiler objects and specs whose options hold
            # live objects (e.g. a trained agent): compiler_fingerprint falls
            # back to recycling-safe per-instance tokens and marks the
            # entries memory-tier-only.
            self._fingerprint, self._stable = compiler_fingerprint(compiler)

    def _discover_cost_model(self) -> CostModel:
        for holder in (self.compiler, getattr(self.compiler, "_compiler", None)):
            if holder is None:
                continue
            options = getattr(holder, "options", None)
            model = getattr(options, "cost_model", None) or getattr(holder, "cost_model", None)
            if isinstance(model, CostModel):
                return model
        return CostModel()

    # -- cache plumbing ----------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The compiler-configuration part of this service's cache keys."""
        return self._fingerprint

    def job_key(self, expr: Expr) -> str:
        """The cache key of ``expr`` under this service's compiler."""
        return cache_key(expr, self._fingerprint)

    # -- single-job interface (drop-in compiler) ---------------------------
    def compile_expression(
        self, expr: Expr, name: str = "circuit", *, verify: bool = False
    ) -> CompilationReport:
        """Compile one expression through the cache (serial).

        ``verify=True`` guarantees the returned report carries a per-stage
        analysis: cache entries compiled without verification are
        recompiled (and replaced) rather than returned unchecked.
        """
        key = self.job_key(expr)
        cached = self.cache.get(key)
        if cached is not None and not (verify and cached.analysis is None):
            return _rename_report(cached, name)
        report = self.compiler.compile_expression(expr, name=name, verify=verify)
        self.cache.put(key, report, stable=self._stable)
        return report

    # -- batch interface ---------------------------------------------------
    def compile_batch(
        self, jobs: Iterable[Union[CompilationJob, Expr, Tuple[Expr, str]]]
    ) -> BatchReport:
        """Compile independent jobs, in parallel when ``workers > 1``.

        Jobs may be given as :class:`CompilationJob`, bare expressions, or
        ``(expr, name)`` pairs.  Reports come back in input order.
        """
        start = time.perf_counter()
        normalized = [self._normalize_job(job) for job in jobs]
        batch = BatchReport(workers=self.workers)
        reports: List[Optional[CompilationReport]] = [None] * len(normalized)
        records: List[Optional[JobRecord]] = [None] * len(normalized)

        # 1. Serve what the cache already has.  Identical expressions within
        # one batch are compiled once: the first occurrence of each key is
        # the representative job, later occurrences fan its report out.
        keys: List[str] = []
        pending: List[int] = []  # representative index per unique missing key
        duplicates: Dict[str, List[int]] = {}
        for index, job in enumerate(normalized):
            estimate = float(self.cost_model.cost(job.expr))
            key = self.job_key(job.expr)
            keys.append(key)
            cached = self.cache.get(key) if key not in duplicates else None
            if cached is not None:
                reports[index] = _rename_report(cached, job.name)
                records[index] = JobRecord(
                    name=job.name,
                    estimated_cost=estimate,
                    cache_hit=True,
                    compile_time_s=0.0,
                    worker=-1,
                )
            else:
                records[index] = JobRecord(
                    name=job.name,
                    estimated_cost=estimate,
                    cache_hit=False,
                    compile_time_s=0.0,
                    worker=0,
                )
                if key in duplicates:
                    duplicates[key].append(index)
                else:
                    duplicates[key] = []
                    pending.append(index)

        # 2. Compile the misses (one representative per unique key).
        if pending:
            workers = min(self.workers, len(pending))
            if workers > 1:
                weights = [records[index].estimated_cost for index in pending]
                payloads = self._parallel_payloads(normalized, pending, weights, workers)
                if payloads is None:
                    self._compile_serial(normalized, pending, reports, records)
                    batch.serial_fallback_reason = (
                        "compiler or jobs are not picklable; ran serially"
                    )
                else:
                    self._compile_parallel(payloads, workers, reports, records)
            else:
                self._compile_serial(normalized, pending, reports, records)
            for index in pending:
                report = reports[index]
                records[index].compile_time_s = report.compile_time_s
                self.cache.put(keys[index], report, stable=self._stable)
                for duplicate in duplicates[keys[index]]:
                    reports[duplicate] = _rename_report(report, normalized[duplicate].name)
                    records[duplicate].deduplicated = True
                    records[duplicate].worker = -1

        batch.reports = [report for report in reports if report is not None]
        batch.records = [record for record in records if record is not None]
        batch.total_compile_time_s = sum(record.compile_time_s for record in batch.records)
        batch.wall_time_s = time.perf_counter() - start
        return batch

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _normalize_job(job: Union[CompilationJob, Expr, Tuple[Expr, str]]) -> CompilationJob:
        if isinstance(job, CompilationJob):
            return job
        if isinstance(job, Expr):
            return CompilationJob(expr=job)
        expr, name = job
        return CompilationJob(expr=expr, name=str(name))

    def _compile_serial(
        self,
        jobs: Sequence[CompilationJob],
        pending: Sequence[int],
        reports: List[Optional[CompilationReport]],
        records: List[Optional[JobRecord]],
    ) -> None:
        for index in pending:
            job = jobs[index]
            reports[index] = self.compiler.compile_expression(job.expr, name=job.name)
            records[index].worker = 0

    def _parallel_payloads(
        self,
        jobs: Sequence[CompilationJob],
        pending: Sequence[int],
        weights: Sequence[float],
        workers: int,
    ) -> Optional[List[Tuple[List[int], bytes]]]:
        """Pickled per-worker payloads, or None when pickling is impossible."""
        plans = partition_jobs(weights, workers)
        payloads: List[Tuple[List[int], bytes]] = []
        try:
            for plan in plans:
                if not plan.job_indices:
                    continue
                plan_jobs = [jobs[pending[i]] for i in plan.job_indices]
                payload = pickle.dumps((self.compiler, plan_jobs))
                payloads.append(([pending[i] for i in plan.job_indices], payload))
        except Exception:
            return None
        return payloads

    def _compile_parallel(
        self,
        payloads: List[Tuple[List[int], bytes]],
        workers: int,
        reports: List[Optional[CompilationReport]],
        records: List[Optional[JobRecord]],
    ) -> None:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (indices, worker_id, pool.submit(_compile_plan, payload))
                for worker_id, (indices, payload) in enumerate(payloads)
            ]
            for indices, worker_id, future in futures:
                for index, report in zip(indices, future.result()):
                    reports[index] = report
                    records[index].worker = worker_id
