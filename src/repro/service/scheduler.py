"""Cost-aware work partitioning for the compilation service.

Compilation jobs are independent but wildly uneven: a deep polynomial-tree
kernel costs orders of magnitude more to compile than a 4-element dot
product, so naive round-robin assignment leaves most workers idle while one
grinds through the big kernels.  Following the load-balancing literature on
cost-function-driven work partitioning (timer-augmented cost functions for
DSMC-style workloads), jobs are scheduled *largest first* onto the currently
least-loaded worker (LPT greedy bin packing), using the analytical
:class:`~repro.core.cost.CostModel` estimate of each expression as the
per-job weight.  LPT is a 4/3-approximation of optimal makespan and is
deterministic, which keeps parallel runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["WorkerPlan", "partition_jobs", "makespan"]


@dataclass
class WorkerPlan:
    """The job indices assigned to one worker, with their summed weight."""

    worker: int
    job_indices: List[int] = field(default_factory=list)
    load: float = 0.0


def partition_jobs(weights: Sequence[float], workers: int) -> List[WorkerPlan]:
    """Partition jobs across ``workers`` bins by largest-first bin packing.

    ``weights[i]`` is the estimated compilation cost of job ``i``.  Returns
    one :class:`WorkerPlan` per worker (workers may be left empty when there
    are fewer jobs than workers).  Ties are broken by job index, so the
    partition is a pure function of the weights.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    plans = [WorkerPlan(worker=index) for index in range(workers)]
    # Sort by descending weight, ascending index for determinism.
    order = sorted(range(len(weights)), key=lambda i: (-float(weights[i]), i))
    for job_index in order:
        target = min(plans, key=lambda plan: (plan.load, plan.worker))
        target.job_indices.append(job_index)
        target.load += float(weights[job_index])
    return plans


def makespan(plans: Sequence[WorkerPlan]) -> float:
    """The estimated wall-clock of a partition (the largest bin load)."""
    return max((plan.load for plan in plans), default=0.0)
