"""Parallel, cached compilation service (the serving layer).

This package turns the single-expression compiler pipeline into a batch
service suitable for experiment harnesses and, eventually, online serving:

* :mod:`repro.service.cache` — a content-addressed compilation cache keyed
  by a canonical hash of ``(expression, compiler configuration)``, with an
  in-memory LRU tier and an optional on-disk tier.
* :mod:`repro.service.scheduler` — cost-aware largest-first bin packing of
  compilation jobs across workers, weighted by the analytical cost model.
* :mod:`repro.service.service` — :class:`CompilationService`, the facade
  combining both, with a serial fallback that keeps results deterministic.
* :mod:`repro.service.execution` — :class:`ExecutionService`, the batched
  execution counterpart: jobs run on any registered execution backend under
  timer-augmented LPT scheduling (measured per-circuit times preferred over
  the analytical model on re-scheduling).
"""

from repro.service.cache import (
    CacheStats,
    CompilationCache,
    cache_key,
    compiler_fingerprint,
)
from repro.service.execution import (
    ExecutionBatchReport,
    ExecutionJob,
    ExecutionRecord,
    ExecutionService,
)
from repro.service.scheduler import WorkerPlan, makespan, partition_jobs
from repro.service.service import (
    BatchReport,
    CompilationJob,
    CompilationService,
    JobRecord,
)

__all__ = [
    "ExecutionBatchReport",
    "ExecutionJob",
    "ExecutionRecord",
    "ExecutionService",
    "CacheStats",
    "CompilationCache",
    "cache_key",
    "compiler_fingerprint",
    "WorkerPlan",
    "partition_jobs",
    "makespan",
    "BatchReport",
    "CompilationJob",
    "CompilationService",
    "JobRecord",
]
