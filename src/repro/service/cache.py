"""Content-addressed compilation cache (in-memory LRU + optional disk tier).

A cache entry is one :class:`~repro.compiler.pipeline.CompilationReport`,
keyed by a canonical SHA-256 hash of ``(expression, compiler configuration)``:

* the expression contributes its printed s-expression form (structural
  identity — two structurally equal expressions share an entry);
* the compiler contributes a *fingerprint*: a canonical, field-by-field
  rendering of its :class:`~repro.compiler.pipeline.CompilerOptions` (and,
  for non-pipeline compilers such as the Coyote baseline, of their own
  options dataclass).  Every field that can change the compiled circuit is
  part of the fingerprint, so flipping any knob misses the cache instead of
  returning a stale circuit.

Compilers whose configuration cannot be rendered canonically (e.g. an
arbitrary optimizer object without a ``cache_token``) get a per-instance
fingerprint: they still enjoy in-memory hits for repeated expressions within
one process, but their entries are marked *unstable* and are never persisted
to the disk tier, where they could poison later runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import os
import pickle
import tempfile
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.compiler.pipeline import CompilationReport, Compiler, CompilerOptions
from repro.ir.nodes import Expr
from repro.ir.printer import to_sexpr

__all__ = [
    "CacheStats",
    "CompilationCache",
    "compiler_fingerprint",
    "cache_key",
]


# ---------------------------------------------------------------------------
# fingerprints and keys
# ---------------------------------------------------------------------------
def _render(value: object) -> str:
    """Canonical textual rendering of a configuration value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = sorted(
            (f.name, _render(getattr(value, f.name))) for f in dataclasses.fields(value)
        )
        inner = ",".join(f"{name}={rendered}" for name, rendered in fields)
        return f"{type(value).__name__}({inner})"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_render(item) for item in value) + "]"
    if isinstance(value, dict):
        inner = ",".join(f"{k}={_render(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    if isinstance(value, float):
        return repr(value)
    return repr(value)


#: Monotonic per-instance tokens for objects without a canonical rendering.
#: ``id()`` alone can be recycled after garbage collection, which would let
#: a new optimizer silently hit a dead optimizer's cache entries.
_instance_tokens = weakref.WeakKeyDictionary()
_instance_counter = itertools.count(1)


def _instance_token(obj: object) -> str:
    try:
        token = _instance_tokens.get(obj)
        if token is None:
            token = next(_instance_counter)
            _instance_tokens[obj] = token
    except TypeError:  # not weak-referenceable; id() is the best we have
        return f"{id(obj):#x}"
    return f"i{token}"


def _optimizer_fingerprint(optimizer: object) -> Tuple[str, bool]:
    """Fingerprint of the optimizer field; ``(text, stable)``."""
    if optimizer is None or isinstance(optimizer, str):
        return repr(optimizer), True
    token = getattr(optimizer, "cache_token", None)
    if callable(token):
        token = token()
    if token is not None:
        return f"{type(optimizer).__name__}:{token}", True
    # Arbitrary optimizer objects (e.g. a trained RL agent) have no canonical
    # configuration rendering: fall back to a per-instance fingerprint that
    # is valid only within this process.
    return f"{type(optimizer).__name__}@{_instance_token(optimizer)}", False


def compiler_fingerprint(compiler: object) -> Tuple[str, bool]:
    """Canonical fingerprint of a compiler's configuration.

    Returns ``(fingerprint, stable)``; ``stable`` is False when the
    fingerprint is only meaningful within the current process (such entries
    are kept out of the disk tier).
    """
    # Wrappers such as GreedyChehabCompiler delegate to an inner Compiler.
    inner = getattr(compiler, "_compiler", None)
    if isinstance(inner, Compiler):
        return compiler_fingerprint(inner)
    if isinstance(compiler, Compiler):
        options = compiler.options
        opt_text, stable = _optimizer_fingerprint(options.optimizer)
        parts = [f"optimizer={opt_text}"]
        for f in dataclasses.fields(CompilerOptions):
            if f.name == "optimizer":
                continue
            parts.append(f"{f.name}={_render(getattr(options, f.name))}")
        return f"Compiler({','.join(parts)})", stable
    options = getattr(compiler, "options", None)
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        return f"{type(compiler).__name__}({_render(options)})", True
    return f"{type(compiler).__name__}@{id(compiler):#x}", False


def cache_key(expr: Expr, fingerprint: str) -> str:
    """Content hash identifying one ``(expression, configuration)`` pair.

    The package version is folded in so a persistent disk tier never serves
    circuits produced by an older compiler after the code changes.
    """
    import repro

    payload = f"{repro.__version__}\x1f{to_sexpr(expr)}\x1f{fingerprint}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# cache tiers
# ---------------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`CompilationCache`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }


class CompilationCache:
    """Two-tier content-addressed cache for compilation reports.

    The first tier is an in-memory LRU of ``capacity`` reports.  When
    ``directory`` is given, a second on-disk tier persists *stable* entries
    (pickled reports named by their key) across processes and sessions; disk
    hits are promoted back into the memory tier.
    """

    def __init__(self, capacity: int = 512, directory: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.directory = directory
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CompilationReport]" = OrderedDict()
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # -- lookup ------------------------------------------------------------
    def get(self, key: str) -> Optional[CompilationReport]:
        """The cached report for ``key``, or None on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        entry = self._disk_get(key)
        if entry is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._memory_put(key, entry)
            return entry
        self.stats.misses += 1
        return None

    def put(self, key: str, report: CompilationReport, stable: bool = True) -> None:
        """Store ``report`` under ``key``; unstable entries stay in memory."""
        self.stats.stores += 1
        self._memory_put(key, report)
        if stable:
            self._disk_put(key, report)

    def clear(self) -> None:
        """Drop the in-memory tier (disk entries are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self._disk_path(key) is not None and os.path.exists(
            self._disk_path(key)
        )

    # -- memory tier -------------------------------------------------------
    def _memory_put(self, key: str, report: CompilationReport) -> None:
        self._entries[key] = report
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # -- disk tier ---------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{key}.pkl")

    def _disk_get(self, key: str) -> Optional[CompilationReport]:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                report = pickle.load(handle)
        except Exception:
            # A truncated or incompatible entry is treated as a miss and
            # removed so it cannot fail every later lookup.
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        return report if isinstance(report, CompilationReport) else None

    def _disk_put(self, key: str, report: CompilationReport) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            blob = pickle.dumps(report)
        except Exception:
            return  # unpicklable report: memory tier only
        # Write-then-rename keeps concurrent readers from seeing torn files.
        fd, temp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.remove(temp_path)
            except OSError:
                pass
