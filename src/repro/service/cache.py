"""Content-addressed compilation cache (in-memory LRU + optional disk tier).

A cache entry is one :class:`~repro.compiler.pipeline.CompilationReport`,
keyed by a canonical SHA-256 hash of ``(expression, compiler configuration)``:

* the expression contributes its printed s-expression form (structural
  identity — two structurally equal expressions share an entry);
* the compiler contributes a *fingerprint*: a canonical, field-by-field
  rendering of its :class:`~repro.compiler.pipeline.CompilerOptions` (and,
  for non-pipeline compilers such as the Coyote baseline, of their own
  options dataclass).  Every field that can change the compiled circuit is
  part of the fingerprint, so flipping any knob misses the cache instead of
  returning a stale circuit.

Compilers whose configuration cannot be rendered canonically (e.g. an
arbitrary optimizer object without a ``cache_token``) get a per-instance
fingerprint: they still enjoy in-memory hits for repeated expressions within
one process, but their entries are marked *unstable* and are never persisted
to the disk tier, where they could poison later runs.

The fingerprint machinery itself lives in :mod:`repro.compiler.registry`
(where a :class:`~repro.compiler.registry.CompilerSpec`'s ``describe()``
string doubles as the fingerprint of every registered compiler);
:func:`compiler_fingerprint` is re-exported here for backward compatibility.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler.pipeline import CompilationReport
from repro.compiler.registry import compiler_fingerprint
from repro.ir.nodes import Expr
from repro.ir.printer import to_sexpr

__all__ = [
    "CacheStats",
    "CompilationCache",
    "compiler_fingerprint",
    "cache_key",
]


def cache_key(expr: Expr, fingerprint: str) -> str:
    """Content hash identifying one ``(expression, configuration)`` pair.

    The package version is folded in so a persistent disk tier never serves
    circuits produced by an older compiler after the code changes.
    """
    import repro

    payload = f"{repro.__version__}\x1f{to_sexpr(expr)}\x1f{fingerprint}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# cache tiers
# ---------------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`CompilationCache`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }


class CompilationCache:
    """Two-tier content-addressed cache for compilation reports.

    The first tier is an in-memory LRU of ``capacity`` reports.  When
    ``directory`` is given, a second on-disk tier persists *stable* entries
    (pickled reports named by their key) across processes and sessions; disk
    hits are promoted back into the memory tier.

    ``capacity=0`` disables the cache entirely: every lookup misses, nothing
    is stored in either tier, and only the miss counters move.  The ablation
    engine uses this to measure what compilation caching is worth without
    changing any call site.
    """

    def __init__(self, capacity: int = 512, directory: Optional[str] = None) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self.directory = directory
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CompilationReport]" = OrderedDict()
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # -- lookup ------------------------------------------------------------
    def get(self, key: str) -> Optional[CompilationReport]:
        """The cached report for ``key``, or None on a miss."""
        if self.capacity == 0:
            self.stats.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        entry = self._disk_get(key)
        if entry is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._memory_put(key, entry)
            return entry
        self.stats.misses += 1
        return None

    def put(self, key: str, report: CompilationReport, stable: bool = True) -> None:
        """Store ``report`` under ``key``; unstable entries stay in memory."""
        if self.capacity == 0:
            return
        self.stats.stores += 1
        self._memory_put(key, report)
        if stable:
            self._disk_put(key, report)

    def clear(self) -> None:
        """Drop the in-memory tier (disk entries are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self._disk_path(key) is not None and os.path.exists(
            self._disk_path(key)
        )

    # -- memory tier -------------------------------------------------------
    def _memory_put(self, key: str, report: CompilationReport) -> None:
        self._entries[key] = report
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # -- disk tier ---------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{key}.pkl")

    def _disk_get(self, key: str) -> Optional[CompilationReport]:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                report = pickle.load(handle)
        except Exception:
            # A truncated or incompatible entry is treated as a miss and
            # removed so it cannot fail every later lookup.
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        return report if isinstance(report, CompilationReport) else None

    def _disk_put(self, key: str, report: CompilationReport) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            blob = pickle.dumps(report)
        except Exception:
            return  # unpicklable report: memory tier only
        # Write-then-rename keeps concurrent readers from seeing torn files.
        fd, temp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.remove(temp_path)
            except OSError:
                pass
