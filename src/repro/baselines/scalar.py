"""The unoptimized "Initial" configuration of Table 6.

No vectorization, no rewriting: the scalar program is lowered as-is (every
scalar operation becomes one ciphertext operation).  This is the column the
paper labels *Initial* and is the common starting point of every compiler in
the comparison.
"""

from __future__ import annotations

from repro.compiler.pipeline import CompilationReport, Compiler, CompilerOptions
from repro.ir.nodes import Expr

__all__ = ["ScalarCompiler"]


class ScalarCompiler:
    """Lower the program without any optimization."""

    def __init__(self, layout_before_encryption: bool = True) -> None:
        self._compiler = Compiler(
            CompilerOptions(
                optimizer="none",
                layout_before_encryption=layout_before_encryption,
            )
        )

    def compile_expression(self, expr: Expr, name: str = "circuit") -> CompilationReport:
        return self._compiler.compile_expression(expr, name=name)
