"""The unoptimized "Initial" configuration of Table 6.

No vectorization, no rewriting: the scalar program is lowered as-is (every
scalar operation becomes one ciphertext operation).  This is the column the
paper labels *Initial* and is the common starting point of every compiler in
the comparison.
"""

from __future__ import annotations

from repro.compiler.framework import PassPipeline
from repro.compiler.pipeline import CompilationReport, Compiler, CompilerOptions
from repro.compiler.registry import register_compiler
from repro.ir.nodes import Expr

__all__ = ["ScalarCompiler"]


class ScalarCompiler:
    """Lower the program without any optimization."""

    def __init__(self, layout_before_encryption: bool = True) -> None:
        self._compiler = Compiler(
            CompilerOptions(
                optimizer="none",
                layout_before_encryption=layout_before_encryption,
            )
        )

    @property
    def pipeline(self) -> PassPipeline:
        return self._compiler.pipeline

    def compile_expression(
        self, expr: Expr, name: str = "circuit", *, verify: bool = False
    ) -> CompilationReport:
        return self._compiler.compile_expression(expr, name=name, verify=verify)


@register_compiler(
    "initial",
    normalize=lambda layout_before_encryption=True: CompilerOptions(
        optimizer="none", layout_before_encryption=layout_before_encryption
    ),
    description="Naive scalar lowering, no vectorization or rewriting",
    paper_config="'Initial' column of Table 6 (common starting point)",
)
def _build_initial(layout_before_encryption: bool = True) -> ScalarCompiler:
    return ScalarCompiler(layout_before_encryption=layout_before_encryption)
