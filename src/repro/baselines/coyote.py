"""A Coyote-style vectorizing compiler baseline.

Coyote (Malik et al., ASPLOS 2023) vectorizes arbitrary arithmetic circuits
by searching over which sub-expressions to pack into ciphertext lanes and
how to lay data out, using hand-tuned heuristics plus an ILP solver.  The
reproduction implements the same *class* of algorithm:

1. build the scalar dataflow DAG of the program;
2. schedule it level by level and pack isomorphic operations at each level
   into vector instructions (superword-level parallelism);
3. **search lane assignments**: for every level the compiler scores many
   candidate lane permutations (the search effort grows with the number of
   packed nodes, which is what makes compile time climb steeply with program
   size, as in Fig. 6) and keeps the one that minimises data movement;
4. resolve the layout *after* packing: every operand vector is gathered from
   its producers with rotate + plaintext-mask + add sequences.

Step 4 is the behavioural signature the paper reports for Coyote: correct
circuits that contain many rotations and ciphertext-plaintext
multiplications, consume more noise budget, and execute slower than the
rotation-sparing circuits CHEHAB RL produces — while step 3 reproduces its
much larger compilation times on big kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.circuit import CircuitProgram, InputSlot, Opcode
from repro.compiler.framework import (
    PassPipeline,
    PipelineState,
    circuit_stage,
    expr_stage,
)
from repro.compiler.passes import constant_fold, dead_code_eliminate
from repro.compiler.pipeline import CompilationReport
from repro.compiler.registry import register_compiler
from repro.core.cost import CostModel
from repro.core.exceptions import CompilationError
from repro.ir.dag import Dag, build_dag
from repro.ir.nodes import Const, Expr, Var, Vec

__all__ = ["CoyoteOptions", "CoyoteCompiler"]

_SCALAR_OPS = {"+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL, "neg": Opcode.NEGATE}


@dataclass
class CoyoteOptions:
    """Tuning knobs of the Coyote-style baseline."""

    #: Base number of lane-assignment candidates scored per level; the
    #: effective number grows with the level's width (search effort scales
    #: with program size, as in the real compiler).
    search_candidates: int = 32
    #: Hard cap on candidates per level.
    max_candidates: int = 192
    #: Number of candidate input-data layouts explored by the outer search
    #: (the ILP-like part of Coyote); each candidate re-runs the full
    #: per-level lane search, which is what makes compile time grow steeply
    #: with program size.
    layout_candidates: int = 24
    #: Random seed of the lane-assignment search.
    seed: int = 0


@dataclass
class _Placement:
    """Where a scalar DAG node's value lives after vectorization."""

    register: int
    lane: int


@dataclass(frozen=True)
class _VectorizeSearchStage:
    """Coyote's layout search: plan candidate layouts, keep the cheapest."""

    compiler: "CoyoteCompiler"
    name: str = "vectorize-search"
    kind: str = "circuit"

    def run(self, state: PipelineState) -> None:
        compiler = self.compiler
        folded = state.expr
        outputs = list(folded.elements) if isinstance(folded, Vec) else [folded]

        # Outer layout search: score several candidate input-data layouts by
        # fully planning the vectorized circuit for each and keeping the one
        # with the lowest estimated cost (rotations + masks dominate).
        rng = np.random.default_rng(compiler.options.seed)
        leaf_count = sum(
            1 for node in build_dag(outputs[0] if len(outputs) == 1 else Vec(*outputs)).nodes
            if isinstance(node.expr, (Var, Const))
        )
        candidates = max(1, min(compiler.options.layout_candidates, max(1, leaf_count)))
        best_program: Optional[CircuitProgram] = None
        best_score = float("inf")
        for candidate in range(candidates):
            permute = candidate > 0
            program = compiler._vectorize(outputs, state.name, rng=rng, permute_leaves=permute)
            program = dead_code_eliminate(program)
            stats = program.stats()
            score = (
                100.0 * stats.ct_ct_multiplications
                + 50.0 * stats.rotations
                + 25.0 * stats.ct_pt_multiplications
                + 1.0 * stats.additions
            )
            if score < best_score:
                best_score = score
                best_program = program
        assert best_program is not None
        state.circuit = best_program
        # Coyote does no expression-level rewriting: the analytical cost of
        # the folded expression is both the initial and the final cost.
        state.initial_cost = state.final_cost = compiler.cost_model.cost(folded)


class CoyoteCompiler:
    """SLP-style vectorizer with post-packing layout resolution."""

    def __init__(self, options: Optional[CoyoteOptions] = None) -> None:
        self.options = options if options is not None else CoyoteOptions()
        self.cost_model = CostModel()

    @property
    def pipeline(self) -> PassPipeline:
        """The stage sequence this compiler runs (uniform with `Compiler`)."""
        return PassPipeline(
            [
                expr_stage("constant-fold", lambda expr, state: constant_fold(expr)),
                _VectorizeSearchStage(self),
                circuit_stage("dce", lambda circuit, state: dead_code_eliminate(circuit)),
            ],
            cost_model=self.cost_model,
        )

    # -- public API -----------------------------------------------------------------
    def compile_expression(
        self, expr: Expr, name: str = "circuit", *, verify: bool = False
    ) -> CompilationReport:
        """Compile ``expr`` and return the same report type as the Compiler."""
        return self.pipeline.compile(expr, name=name, verify=verify)

    # -- core algorithm -------------------------------------------------------------------
    def _vectorize(
        self,
        outputs: Sequence[Expr],
        name: str,
        rng: Optional[np.random.Generator] = None,
        permute_leaves: bool = False,
    ) -> CircuitProgram:
        if rng is None:
            rng = np.random.default_rng(self.options.seed)
        program = CircuitProgram(name=name)

        # 1. Build one shared DAG over all outputs.
        root = outputs[0] if len(outputs) == 1 else Vec(*outputs)
        dag = build_dag(root)

        # 2. Collect leaves and pack them into a single input ciphertext,
        #    possibly with a permuted layout (outer layout search).
        leaf_nodes: List[int] = []
        for node in dag.nodes:
            expr = node.expr
            if isinstance(expr, (Var, Const)):
                leaf_nodes.append(node.node_id)
            elif expr.op not in _SCALAR_OPS and expr.op != "Vec":
                raise CompilationError(
                    f"Coyote baseline supports scalar circuits only, got {expr.op!r}"
                )
        if permute_leaves and len(leaf_nodes) > 1:
            order = rng.permutation(len(leaf_nodes))
            leaf_nodes = [leaf_nodes[i] for i in order]
        leaf_lane: Dict[int, int] = {}
        layout: List[InputSlot] = []
        for node_id in leaf_nodes:
            expr = dag.nodes[node_id].expr
            leaf_lane[node_id] = len(layout)
            if isinstance(expr, Var):
                layout.append(InputSlot(name=expr.name))
            else:
                layout.append(InputSlot(constant=expr.value))
        if not layout:
            layout = [InputSlot(constant=0)]
        input_register = program.emit(Opcode.LOAD_INPUT, layout=tuple(layout))
        for slot in layout:
            if slot.name is not None and slot.name not in program.scalar_inputs:
                program.scalar_inputs.append(slot.name)

        placements: Dict[int, _Placement] = {
            node_id: _Placement(register=input_register, lane=lane)
            for node_id, lane in leaf_lane.items()
        }

        # 3. Group compute nodes by level.
        levels: Dict[int, List[int]] = {}
        for node in dag.nodes:
            if node.expr.op in _SCALAR_OPS:
                levels.setdefault(node.depth, []).append(node.node_id)

        mask_cache: Dict[Tuple[int, ...], int] = {}

        def plain_mask(lanes: Sequence[int]) -> int:
            key = tuple(sorted(lanes))
            register = mask_cache.get(key)
            if register is None:
                width = max(key) + 1
                values = [1 if lane in key else 0 for lane in range(width)]
                register = program.emit(Opcode.LOAD_PLAIN, name="vector", values=tuple(values))
                mask_cache[key] = register
            return register

        def gather(sources: List[Tuple[_Placement, int]]) -> int:
            """Build a ciphertext whose lane ``target`` holds each source value."""
            groups: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
            for placement, target_lane in sources:
                shift = placement.lane - target_lane
                groups.setdefault((placement.register, shift), []).append(
                    (placement.lane, target_lane)
                )
            accumulator: Optional[int] = None
            for (register, shift), lanes in sorted(groups.items()):
                piece = register
                if shift != 0:
                    piece = program.emit(Opcode.ROTATE, (piece,), step=shift)
                target_lanes = [target for _source, target in lanes]
                piece = program.emit(
                    Opcode.MUL_PLAIN, (piece, plain_mask(target_lanes))
                )
                accumulator = (
                    piece
                    if accumulator is None
                    else program.emit(Opcode.ADD, (accumulator, piece))
                )
            assert accumulator is not None
            return accumulator

        # 4. Vectorize level by level with a lane-assignment search.
        for depth in sorted(levels):
            node_ids = levels[depth]
            by_op: Dict[str, List[int]] = {}
            for node_id in node_ids:
                by_op.setdefault(dag.nodes[node_id].expr.op, []).append(node_id)
            for op, group in sorted(by_op.items()):
                lanes = self._search_lanes(group, dag, placements, rng)
                operand_count = 1 if op == "neg" else 2
                operand_registers: List[int] = []
                for position in range(operand_count):
                    sources: List[Tuple[_Placement, int]] = []
                    for node_id in group:
                        operand_id = dag.nodes[node_id].operands[position]
                        sources.append((placements[operand_id], lanes[node_id]))
                    operand_registers.append(gather(sources))
                if op == "neg":
                    result = program.emit(Opcode.NEGATE, (operand_registers[0],))
                else:
                    result = program.emit(
                        _SCALAR_OPS[op], tuple(operand_registers)
                    )
                for node_id in group:
                    placements[node_id] = _Placement(register=result, lane=lanes[node_id])

        # 5. Gather the outputs into their final layout (output i at slot i).
        output_sources: List[Tuple[_Placement, int]] = []
        for index, output in enumerate(outputs):
            node_id = dag.index[output]
            output_sources.append((placements[node_id], index))
        result_register = gather(output_sources)
        program.mark_output(result_register, "result", len(outputs))
        return program

    # -- lane-assignment search -------------------------------------------------------------
    def _search_lanes(
        self,
        group: List[int],
        dag: Dag,
        placements: Dict[int, _Placement],
        rng: np.random.Generator,
    ) -> Dict[int, int]:
        """Search lane permutations for one pack, minimising data movement."""
        width = len(group)
        base = list(range(width))
        candidate_count = min(
            self.options.max_candidates,
            max(self.options.search_candidates, width * width),
        )
        best_assignment: Optional[Dict[int, int]] = None
        best_score = float("inf")
        for candidate in range(candidate_count):
            if candidate == 0:
                order = base
            else:
                order = list(rng.permutation(width))
            assignment = {node_id: order[i] for i, node_id in enumerate(group)}
            score = self._movement_cost(group, assignment, dag, placements)
            if score < best_score:
                best_score = score
                best_assignment = assignment
        assert best_assignment is not None
        return best_assignment

    @staticmethod
    def _movement_cost(
        group: List[int],
        assignment: Dict[int, int],
        dag: Dag,
        placements: Dict[int, _Placement],
    ) -> float:
        """Number of distinct (source register, shift) pairs over all operands."""
        distinct: set = set()
        for node_id in group:
            node = dag.nodes[node_id]
            for operand_id in node.operands:
                placement = placements[operand_id]
                shift = placement.lane - assignment[node_id]
                distinct.add((placement.register, shift))
        return float(len(distinct))


@register_compiler(
    "coyote",
    normalize=lambda **options: CoyoteOptions(**options),
    description="Coyote-style SLP vectorizer (lane-assignment + layout search)",
    paper_config="Coyote baseline (Figs. 5-7; Table 6 'Coyote' column)",
)
def _build_coyote(**options: object) -> CoyoteCompiler:
    return CoyoteCompiler(CoyoteOptions(**options))
