"""Baseline compilers the paper compares against.

* :mod:`repro.baselines.coyote` -- a Coyote-style SLP vectorizer: packs
  isomorphic scalar operations level by level, searches lane assignments to
  minimise data movement, and resolves the resulting layout with rotations
  and plaintext masks *after* packing (the behaviour that makes Coyote's
  circuits rotation- and ct-pt-multiplication-heavy in Table 6);
* :mod:`repro.baselines.greedy_trs` -- the original (non-RL) CHEHAB
  behaviour: greedy best-improvement term rewriting;
* :mod:`repro.baselines.scalar` -- the unoptimized "Initial" configuration
  (no vectorization at all).
"""

from repro.baselines.coyote import CoyoteCompiler, CoyoteOptions
from repro.baselines.greedy_trs import GreedyChehabCompiler
from repro.baselines.scalar import ScalarCompiler

__all__ = [
    "CoyoteCompiler",
    "CoyoteOptions",
    "GreedyChehabCompiler",
    "ScalarCompiler",
]
