"""The original (non-RL) CHEHAB baseline: greedy term rewriting.

The paper's "CHEHAB RL vs CHEHAB" ablation (Fig. 12) compares the learned
policy against the original compiler, whose rewrite engine applies rules by
local cost improvement rather than a learned policy.  This module packages
the greedy rewriter behind the same compiler interface so both can be
swapped into the experiment harness.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.framework import PassPipeline
from repro.compiler.pipeline import CompilationReport, Compiler, CompilerOptions
from repro.compiler.registry import register_compiler
from repro.core.cost import CostModel
from repro.ir.nodes import Expr

__all__ = ["GreedyChehabCompiler"]


class GreedyChehabCompiler:
    """The original CHEHAB: greedy best-improvement TRS + classic passes."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        layout_before_encryption: bool = True,
        max_rewrite_steps: int = 75,
    ) -> None:
        self._compiler = Compiler(
            CompilerOptions(
                optimizer="greedy",
                cost_model=cost_model if cost_model is not None else CostModel(),
                layout_before_encryption=layout_before_encryption,
                max_rewrite_steps=max_rewrite_steps,
            )
        )

    @property
    def pipeline(self) -> PassPipeline:
        return self._compiler.pipeline

    def compile_expression(
        self, expr: Expr, name: str = "circuit", *, verify: bool = False
    ) -> CompilationReport:
        return self._compiler.compile_expression(expr, name=name, verify=verify)


def _normalize_greedy(
    cost_model: Optional[CostModel] = None,
    layout_before_encryption: bool = True,
    max_rewrite_steps: int = 75,
) -> CompilerOptions:
    return CompilerOptions(
        optimizer="greedy",
        cost_model=cost_model if cost_model is not None else CostModel(),
        layout_before_encryption=layout_before_encryption,
        max_rewrite_steps=max_rewrite_steps,
    )


@register_compiler(
    "greedy",
    normalize=_normalize_greedy,
    description="Original CHEHAB: greedy best-improvement TRS + classic passes",
    paper_config="'CHEHAB' greedy baseline (Fig. 12 ablation)",
)
def _build_greedy(
    cost_model: Optional[CostModel] = None,
    layout_before_encryption: bool = True,
    max_rewrite_steps: int = 75,
) -> GreedyChehabCompiler:
    return GreedyChehabCompiler(
        cost_model=cost_model,
        layout_before_encryption=layout_before_encryption,
        max_rewrite_steps=max_rewrite_steps,
    )
