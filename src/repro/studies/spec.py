"""Study specifications and the run-matrix generator.

A :class:`StudySpec` declares *what* to study — which components to ablate,
which workloads to drive through the server, how many replicates — and
:func:`generate_runs` expands it into the full deterministic run matrix:
one ``baseline`` condition plus one condition per component, times
``replicates`` runs each.

Replicate seeding follows the repo-wide :func:`numpy.random.SeedSequence`
contract (the same scheme ``api.derive_batch_seeds`` uses for batch items):
the study seed spawns one child sequence per condition, each condition
spawns one grandchild per replicate, and every run seed is drawn from its
own grandchild.  Spawned sequences are statistically independent by
construction, so no two runs anywhere in the matrix sample the same input
stream — which is what makes cross-condition metric deltas attributable to
the configuration rather than to shared inputs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.studies.components import default_components, get_component

__all__ = ["RunConfig", "StudySpec", "RunSpec", "generate_runs", "condition_seeds"]

#: The condition name of the everything-on configuration.
BASELINE = "baseline"


@dataclass(frozen=True)
class RunConfig:
    """The server/service knobs one study run is executed under.

    ``None`` for ``compiler``/``backend`` means *each workload's registered
    default* — the baseline exercises the optimizing compiler and vector VM
    the workloads declare, and ablations override per run, not per job.
    """

    compiler: Optional[str] = None
    backend: Optional[str] = None
    coalesce: bool = True
    memoize_circuits: bool = True
    cache_capacity: int = 512
    prefer_measured: bool = True
    admission: str = "off"
    workers: int = 2
    #: End-to-end span tracing (:mod:`repro.obs`).  Off by default so the
    #: default matrix measures the production configuration; the ``tracing``
    #: component flips it on in its baseline to price the tracing overhead.
    tracing: bool = False

    def with_overrides(self, overrides: Mapping[str, object]) -> "RunConfig":
        """A copy with ``overrides`` applied; unknown keys are an error."""
        known = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise KeyError(f"unknown RunConfig fields: {', '.join(unknown)}")
        return dataclasses.replace(self, **dict(overrides))

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "RunConfig":
        return cls().with_overrides(record)


@dataclass(frozen=True)
class StudySpec:
    """Everything needed to (re)generate a study's run matrix."""

    name: str = "system-ablation"
    #: Component names to ablate; empty selects every default component.
    components: Tuple[str, ...] = ()
    #: Workload registry names driven through the server each run.
    workloads: Tuple[str, ...] = ("dot-product", "max-tree")
    #: Runs per condition; ≥3 gives the bootstrap something to resample.
    replicates: int = 3
    #: Jobs submitted per run (cycled over ``workloads`` and ``priorities``).
    jobs_per_replicate: int = 8
    seed: int = 0
    base_config: RunConfig = field(default_factory=RunConfig)
    primary_metric: str = "throughput_jobs_per_s"
    #: Job priorities cycled across submissions (reuses the server's
    #: priority queue exactly as production traffic does).
    priorities: Tuple[int, ...] = (0, 1)
    #: Unrecorded throwaway runs executed before the first recorded run of
    #: each session.  A cold process inflates whichever condition runs
    #: first (imports, allocator, JIT-warm numpy paths); warm-up runs soak
    #: that up so it lands on no condition's ledger.
    warmup_runs: int = 1

    def __post_init__(self) -> None:
        if self.replicates < 1:
            raise ValueError("replicates must be at least 1")
        if self.jobs_per_replicate < 1:
            raise ValueError("jobs_per_replicate must be at least 1")
        if not self.workloads:
            raise ValueError("a study needs at least one workload")
        if not self.priorities:
            raise ValueError("a study needs at least one priority")

    def component_names(self) -> List[str]:
        """The resolved component list (default matrix when empty)."""
        names = list(self.components) if self.components else default_components()
        for name in names:
            get_component(name)  # raises on unknown names
        return names

    def baseline_config(self) -> RunConfig:
        """``base_config`` plus every selected component's baseline overrides."""
        config = self.base_config
        for name in self.component_names():
            config = config.with_overrides(get_component(name).baseline)
        return config

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "components": self.component_names(),
            "workloads": list(self.workloads),
            "replicates": self.replicates,
            "jobs_per_replicate": self.jobs_per_replicate,
            "seed": self.seed,
            "base_config": self.base_config.as_dict(),
            "primary_metric": self.primary_metric,
            "priorities": list(self.priorities),
            "warmup_runs": self.warmup_runs,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "StudySpec":
        return cls(
            name=str(record.get("name", "system-ablation")),
            components=tuple(record.get("components", ())),
            workloads=tuple(record.get("workloads", ("dot-product", "max-tree"))),
            replicates=int(record.get("replicates", 3)),
            jobs_per_replicate=int(record.get("jobs_per_replicate", 8)),
            seed=int(record.get("seed", 0)),
            base_config=RunConfig.from_dict(record.get("base_config", {})),
            primary_metric=str(record.get("primary_metric", "throughput_jobs_per_s")),
            priorities=tuple(record.get("priorities", (0, 1))),
            warmup_runs=int(record.get("warmup_runs", 1)),
        )


@dataclass(frozen=True)
class RunSpec:
    """One cell of the run matrix: a condition, replicate and seed."""

    run_id: str
    condition: str
    replicate: int
    seed: int
    config: RunConfig

    def as_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "condition": self.condition,
            "replicate": self.replicate,
            "seed": self.seed,
            "config": self.config.as_dict(),
        }


def condition_seeds(study_seed: int, conditions: Sequence[str], replicates: int) -> Dict[str, List[int]]:
    """Per-condition replicate seeds via two-level ``SeedSequence.spawn``.

    Condition order matters (it indexes the first spawn level), which is why
    :func:`generate_runs` always puts ``baseline`` first and components in
    spec order — the same spec yields the same seeds on every invocation,
    including after a resume.
    """
    roots = np.random.SeedSequence(study_seed).spawn(len(conditions))
    seeds: Dict[str, List[int]] = {}
    for condition, root in zip(conditions, roots):
        children = root.spawn(replicates)
        seeds[condition] = [
            int(child.generate_state(1, np.uint32)[0]) for child in children
        ]
    return seeds


def generate_runs(spec: StudySpec) -> List[RunSpec]:
    """Expand ``spec`` into its full deterministic run matrix.

    One ``baseline`` condition plus one single-delta condition per component,
    each with ``spec.replicates`` independently seeded runs.  The matrix is
    ordered *replicate-major* (replicate 0 of every condition, then
    replicate 1, …): runs execute in matrix order, so condition-major order
    would hand whichever condition runs first the whole cost of a cold
    process and bias every importance score.  Interleaving spreads that
    drift evenly across conditions.
    """
    names = spec.component_names()
    conditions = [BASELINE] + names
    baseline = spec.baseline_config()
    configs: Dict[str, RunConfig] = {BASELINE: baseline}
    for name in names:
        configs[name] = baseline.with_overrides(get_component(name).ablated)
    seeds = condition_seeds(spec.seed, conditions, spec.replicates)
    runs: List[RunSpec] = []
    for replicate in range(spec.replicates):
        for condition in conditions:
            runs.append(
                RunSpec(
                    run_id=f"{condition}/r{replicate}",
                    condition=condition,
                    replicate=replicate,
                    seed=seeds[condition][replicate],
                    config=configs[condition],
                )
            )
    return runs
