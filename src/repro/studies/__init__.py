"""Study orchestration: automated ablations on the job server.

The subsystem turns the serving stack into its own experiment platform.
:mod:`repro.studies.components` names the toggleable components,
:mod:`repro.studies.spec` expands a study into a seeded run matrix,
:mod:`repro.studies.runner` executes it (resumably) on per-run
:class:`~repro.server.server.JobServer` instances, and
:mod:`repro.studies.analysis` turns the records into ranked importance
scores with bootstrap confidence intervals.

The supported entry points are :func:`repro.api.run_study`,
:func:`repro.api.list_components` and the ``python -m repro study``
CLI group.
"""

from repro.studies.analysis import (
    bootstrap_ci,
    component_importance,
    condition_summary,
    rank_components,
    study_report,
)
from repro.studies.components import (
    Component,
    available_components,
    default_components,
    get_component,
    register_component,
)
from repro.studies.runner import (
    StudyProgress,
    StudyRunner,
    load_study_spec,
    run_study_spec,
)
from repro.studies.spec import (
    BASELINE,
    RunConfig,
    RunSpec,
    StudySpec,
    condition_seeds,
    generate_runs,
)

__all__ = [
    "BASELINE",
    "Component",
    "RunConfig",
    "RunSpec",
    "StudyProgress",
    "StudyRunner",
    "StudySpec",
    "available_components",
    "bootstrap_ci",
    "component_importance",
    "condition_seeds",
    "condition_summary",
    "default_components",
    "generate_runs",
    "get_component",
    "load_study_spec",
    "rank_components",
    "register_component",
    "run_study_spec",
    "study_report",
]
