"""Importance analysis over finished study records.

Each component's *importance* is the relative change of the study's primary
metric when that component is switched off:

``importance = (baseline_mean − ablated_mean) / baseline_mean``

for higher-is-better metrics (throughput), with the sign flipped for
lower-is-better ones (latencies) — so positive importance always means
*removing the component makes the system worse*, and the magnitude is the
fraction of the baseline metric the component is worth.

Uncertainty comes from a seeded nonparametric bootstrap: baseline and
ablated replicate values are resampled with replacement independently,
the importance recomputed per resample, and the CI read off the percentile
interval.  With the recommended ≥3 replicates the interval is wide but
honest; more replicates tighten it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.studies.spec import BASELINE

__all__ = [
    "bootstrap_ci",
    "condition_summary",
    "component_importance",
    "rank_components",
    "study_report",
]

#: Metrics where smaller is better — importance signs flip for these.
LOWER_IS_BETTER = frozenset(
    {
        "mean_wait_s",
        "mean_run_s",
        "p50_run_s",
        "p99_run_s",
        "p50_wait_s",
        "p99_wait_s",
        "mean_latency_ms",
        "jobs_failed",
        "jobs_shed",
        "cache_misses",
    }
)


def _metric_values(
    records: Iterable[Mapping[str, object]], condition: str, metric: str
) -> List[float]:
    values: List[float] = []
    for record in records:
        if record.get("type") != "run" or record.get("condition") != condition:
            continue
        metrics = record.get("metrics") or {}
        value = metrics.get(metric)
        if isinstance(value, (int, float)):
            values.append(float(value))
    return values


def _importance(baseline_mean: float, ablated_mean: float, metric: str) -> float:
    if baseline_mean == 0.0:
        return 0.0
    score = (baseline_mean - ablated_mean) / abs(baseline_mean)
    return -score if metric in LOWER_IS_BETTER else score


def bootstrap_ci(
    baseline: Sequence[float],
    ablated: Sequence[float],
    metric: str,
    *,
    seed: int = 0,
    resamples: int = 2000,
    alpha: float = 0.05,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI of the importance score.

    Baseline and ablated replicates are resampled independently (they are
    independent runs) and the importance recomputed per resample.
    """
    if not baseline or not ablated:
        return (0.0, 0.0)
    rng = np.random.default_rng(seed)
    base = np.asarray(baseline, dtype=float)
    abl = np.asarray(ablated, dtype=float)
    scores = np.empty(resamples, dtype=float)
    for i in range(resamples):
        b = base[rng.integers(0, len(base), size=len(base))]
        a = abl[rng.integers(0, len(abl), size=len(abl))]
        scores[i] = _importance(float(b.mean()), float(a.mean()), metric)
    low, high = np.quantile(scores, [alpha / 2.0, 1.0 - alpha / 2.0])
    return (float(low), float(high))


def condition_summary(
    records: Iterable[Mapping[str, object]], condition: str, metrics: Sequence[str]
) -> Dict[str, object]:
    """Per-metric mean/std/n for one condition's replicates."""
    records = list(records)
    summary: Dict[str, object] = {"condition": condition}
    table: Dict[str, Dict[str, float]] = {}
    for metric in metrics:
        values = _metric_values(records, condition, metric)
        if values:
            arr = np.asarray(values, dtype=float)
            table[metric] = {
                "mean": float(arr.mean()),
                "std": float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
                "n": len(values),
            }
        else:
            table[metric] = {"mean": 0.0, "std": 0.0, "n": 0}
    summary["metrics"] = table
    return summary


def component_importance(
    records: Iterable[Mapping[str, object]],
    components: Sequence[str],
    *,
    metric: str,
    seed: int = 0,
    resamples: int = 2000,
) -> List[Dict[str, object]]:
    """One importance row per component, in the given component order."""
    records = list(records)
    baseline = _metric_values(records, BASELINE, metric)
    baseline_mean = float(np.mean(baseline)) if baseline else 0.0
    rows: List[Dict[str, object]] = []
    for index, component in enumerate(components):
        ablated = _metric_values(records, component, metric)
        ablated_mean = float(np.mean(ablated)) if ablated else 0.0
        low, high = bootstrap_ci(
            baseline, ablated, metric, seed=seed + index, resamples=resamples
        )
        rows.append(
            {
                "component": component,
                "metric": metric,
                "baseline_mean": baseline_mean,
                "ablated_mean": ablated_mean,
                "delta": ablated_mean - baseline_mean,
                # No recorded replicates on either side means no evidence,
                # not a total loss — report zero importance, zero-width CI.
                "importance": (
                    _importance(baseline_mean, ablated_mean, metric)
                    if baseline and ablated
                    else 0.0
                ),
                "ci_low": low,
                "ci_high": high,
                "baseline_replicates": len(baseline),
                "ablated_replicates": len(ablated),
            }
        )
    return rows


def rank_components(rows: Iterable[Mapping[str, object]]) -> List[Dict[str, object]]:
    """Importance rows sorted most-important-first (by |importance|)."""
    ranked = sorted(rows, key=lambda row: abs(float(row["importance"])), reverse=True)
    return [dict(row, rank=index + 1) for index, row in enumerate(ranked)]


def study_report(
    spec_record: Mapping[str, object],
    records: Iterable[Mapping[str, object]],
    *,
    seed: int = 0,
    resamples: int = 2000,
    metrics: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """The full analysis payload the CLI/bench script emit.

    ``spec_record`` is the dict form of a :class:`~repro.studies.spec.StudySpec`
    (what the study log's header pins); ``records`` are its run records.
    """
    records = list(records)
    components = [str(name) for name in spec_record.get("components", [])]
    primary = str(spec_record.get("primary_metric", "throughput_jobs_per_s"))
    if metrics is None:
        seen: Dict[str, None] = {}
        for record in records:
            if record.get("type") == "run":
                for name in record.get("metrics") or {}:
                    seen.setdefault(str(name), None)
        metrics = sorted(seen)
    conditions = [BASELINE] + components
    importance = component_importance(
        records, components, metric=primary, seed=seed, resamples=resamples
    )
    run_count = sum(1 for record in records if record.get("type") == "run")
    return {
        "study": spec_record.get("name", "study"),
        "spec": dict(spec_record),
        "primary_metric": primary,
        "runs_recorded": run_count,
        "conditions": [
            condition_summary(records, condition, metrics) for condition in conditions
        ],
        "importance": importance,
        "ranking": rank_components(importance),
    }
