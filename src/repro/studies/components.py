"""The component registry of the study engine.

A :class:`Component` names one toggleable piece of the serving stack — the
optimizing compiler, the batched vector backend, the vector VM's tape
optimizer, the fingerprint coalescer, the compilation-cache tier, the
timer-augmented scheduler, admission control — together with the
configuration delta that switches it *off*.  A study
then runs one baseline (everything on) plus one condition per component
(exactly that component off) and prices each component by the metric
difference, the :mod:`repro.studies.analysis` importance score.

Components are registered with :func:`register_component`, mirroring the
``@register_compiler`` / ``@register_backend`` / ``@register_workload``
idiom used everywhere else in the repo, so downstream code can declare new
ablatable subsystems without touching the engine:

* ``ablated`` — :class:`~repro.studies.spec.RunConfig` field overrides that
  disable the component (applied on top of the study baseline);
* ``baseline`` — overrides the component needs merged into the *baseline*
  configuration for its ablation to be meaningful (e.g. admission control is
  off by default, so its component switches it on in the baseline and off in
  its own condition);
* ``metrics`` — metric names the component is expected to move, surfaced in
  reports as a reading aid (every recorded metric is harvested regardless).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

__all__ = [
    "Component",
    "register_component",
    "get_component",
    "available_components",
    "default_components",
]


@dataclass(frozen=True)
class Component:
    """One toggleable system component a study can ablate."""

    name: str
    description: str
    #: RunConfig overrides that switch the component OFF.
    ablated: Mapping[str, object] = field(default_factory=dict)
    #: RunConfig overrides required in the BASELINE for this component to be
    #: on in the first place (empty for components that default to on).
    baseline: Mapping[str, object] = field(default_factory=dict)
    #: Metrics this component is expected to move (informational).
    metrics: Tuple[str, ...] = ()
    #: Whether the component belongs in the default study matrix.  Noisy or
    #: situational components (admission control sheds jobs, skewing every
    #: throughput row) register with ``default=False`` and are opted into
    #: explicitly.
    default: bool = True

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "ablated": dict(self.ablated),
            "baseline": dict(self.baseline),
            "metrics": list(self.metrics),
            "default": self.default,
        }


_COMPONENTS: Dict[str, Component] = {}


def register_component(component: Component) -> Component:
    """Register ``component``; later registrations replace earlier ones."""
    _COMPONENTS[component.name] = component
    return component


def get_component(name: str) -> Component:
    """The registered component called ``name``."""
    try:
        return _COMPONENTS[name]
    except KeyError:
        known = ", ".join(sorted(_COMPONENTS)) or "<none>"
        raise KeyError(f"unknown component {name!r}; registered: {known}") from None


def available_components() -> List[str]:
    """Sorted names of every registered component."""
    return sorted(_COMPONENTS)


def default_components() -> List[str]:
    """Sorted names of the components in the default study matrix."""
    return sorted(name for name, comp in _COMPONENTS.items() if comp.default)


# ---------------------------------------------------------------------------
# built-in components — the subsystems this repo's perf claims rest on
# ---------------------------------------------------------------------------
register_component(
    Component(
        name="compiler-opt",
        description=(
            "Optimizing compiler pipeline: ablated runs lower every circuit "
            "with the unoptimized 'initial' compiler instead of the "
            "workload's optimizing default."
        ),
        ablated={"compiler": "initial"},
        metrics=("mean_latency_ms", "mean_run_s"),
    )
)

register_component(
    Component(
        name="vector-backend",
        description=(
            "Batched vector VM: ablated runs execute on the scalar "
            "'reference' interpreter, one input set at a time."
        ),
        ablated={"backend": "reference"},
        metrics=("throughput_jobs_per_s", "mean_run_s"),
    )
)

register_component(
    Component(
        name="vm-tapeopt",
        description=(
            "Vector-VM tape compilation: ablated runs execute on "
            "'vector-vm-interp', the legacy per-instruction stacked-rows "
            "interpreter, instead of the fused, arena-allocated, "
            "per-tape-specialized compiled tapes (opt_level=0 vs 2)."
        ),
        ablated={"backend": "vector-vm-interp"},
        metrics=("throughput_jobs_per_s", "mean_run_s"),
    )
)

register_component(
    Component(
        name="coalescing",
        description=(
            "Fingerprint batch coalescer: ablated runs execute every job as "
            "its own backend batch, as if the coalescer never existed."
        ),
        ablated={"coalesce": False},
        metrics=("coalesced_fraction", "throughput_jobs_per_s"),
    )
)

register_component(
    Component(
        name="compile-cache",
        description=(
            "Compilation caching tier: ablated runs disable the "
            "content-addressed CompilationCache (capacity=0) AND the "
            "server's hot-path circuit memo, so every repeat pays a full "
            "compile."
        ),
        ablated={"cache_capacity": 0, "memoize_circuits": False},
        metrics=("memo_hit_rate", "cache_hit_rate", "throughput_jobs_per_s"),
    )
)

register_component(
    Component(
        name="measured-scheduler",
        description=(
            "Timer-augmented scheduling (McDoniel & Bientinesi): ablated "
            "runs weight batches with the raw analytical latency model "
            "instead of measured EWMA execution times."
        ),
        ablated={"prefer_measured": False},
        metrics=("measured_estimate_fraction", "mean_run_s"),
    )
)

register_component(
    Component(
        name="tracing",
        description=(
            "End-to-end span tracing (repro.obs): on in this component's "
            "baseline (tracing=True), off in its ablated condition — the "
            "importance score is therefore the throughput cost of leaving "
            "tracing enabled.  Excluded from the default matrix so the "
            "production rows stay untraced."
        ),
        ablated={"tracing": False},
        baseline={"tracing": True},
        metrics=("throughput_jobs_per_s", "mean_run_s"),
        default=False,
    )
)

register_component(
    Component(
        name="admission-control",
        description=(
            "Cost-aware admission control: on in this component's baseline "
            "(admission='shed'), off in its ablated condition.  Excluded "
            "from the default matrix because shedding changes the completed-"
            "job population of every other row."
        ),
        ablated={"admission": "off"},
        baseline={"admission": "shed"},
        metrics=("jobs_shed", "p99_wait_s"),
        default=False,
    )
)
