"""The study runner: executes a run matrix on the JobServer, resumably.

:class:`StudyRunner` takes a :class:`~repro.studies.spec.StudySpec` and a
study directory and works through :func:`~repro.studies.spec.generate_runs`
one run at a time.  Each run gets its own :class:`~repro.server.server.JobServer`
with a private persistent state dir under ``<study_dir>/runs/<run_id>``, so
every run reuses the production stack end to end — priority queue,
coalescer, telemetry, compilation cache, crash-recovering JSONL job store —
under exactly the knob settings its :class:`~repro.studies.spec.RunConfig`
declares.

Study progress is itself persisted as JSONL (``<study_dir>/study.jsonl``):
one ``{"type": "spec"}`` header pinning the spec, then one
``{"type": "run"}`` record per *finished* replicate carrying its harvested
metrics.  A record is appended (and fsynced) only after its run completes,
so killing a study mid-run loses at most the in-flight replicate:
:meth:`StudyRunner.run` on the same directory skips every recorded run and
re-executes only the remainder — and re-started runs first wipe their
private server state dir, so a half-written job store can never leak stale
jobs into the retry.

Metrics are harvested from three places: completed job ``result`` payloads
(:class:`~repro.compiler.executor.ExecutionReport` fields — model latency,
noise budget, verification), the server's telemetry snapshot (counters and
wait/run histograms, percentiles via
:func:`~repro.server.telemetry.percentile_from_snapshot`) and the
compilation-cache statistics.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.server.jobs import Job
from repro.server.server import JobServer
from repro.server.telemetry import percentile_from_snapshot
from repro.service.cache import CompilationCache
from repro.studies.spec import RunSpec, StudySpec, generate_runs
from repro.workloads.registry import get_workload

__all__ = ["StudyRunner", "StudyProgress", "run_study_spec", "load_study_spec"]

STUDY_LOG = "study.jsonl"


@dataclass
class StudyProgress:
    """Outcome of one :meth:`StudyRunner.run` call."""

    executed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    remaining: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.remaining

    def as_dict(self) -> Dict[str, object]:
        return {
            "executed": list(self.executed),
            "skipped": list(self.skipped),
            "remaining": list(self.remaining),
            "complete": self.complete,
        }


class StudyRunner:
    """Executes (and resumes) one study inside ``study_dir``."""

    def __init__(self, spec: StudySpec, study_dir: str) -> None:
        self.spec = spec
        self.study_dir = study_dir
        self.log_path = os.path.join(study_dir, STUDY_LOG)
        os.makedirs(study_dir, exist_ok=True)

    # -- persistent state ---------------------------------------------------
    def load_records(self) -> List[Dict[str, object]]:
        """Every intact record in the study log, in append order.

        A torn final line (the kill arrived mid-append) is ignored, exactly
        like the job store seals torn tails.
        """
        if not os.path.exists(self.log_path):
            return []
        records: List[Dict[str, object]] = []
        with open(self.log_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
        return records

    def completed_runs(self) -> Dict[str, Dict[str, object]]:
        """Finished run records keyed by ``run_id`` (latest wins)."""
        completed: Dict[str, Dict[str, object]] = {}
        for record in self.load_records():
            if record.get("type") == "run" and record.get("status") == "completed":
                completed[str(record["run_id"])] = record
        return completed

    def _append(self, record: Mapping[str, object]) -> None:
        with open(self.log_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _check_spec(self) -> None:
        """Refuse to resume a directory recorded under a different spec."""
        spec_dict = self.spec.as_dict()
        for record in self.load_records():
            if record.get("type") == "spec":
                if record.get("spec") != spec_dict:
                    raise ValueError(
                        f"study dir {self.study_dir!r} was started with a "
                        "different spec; use a fresh directory or the "
                        "original spec"
                    )
                return
        self._append({"type": "spec", "study": self.spec.name, "spec": spec_dict})

    # -- execution ----------------------------------------------------------
    def run(
        self,
        max_runs: Optional[int] = None,
        progress: Optional[Callable[[RunSpec, Dict[str, object]], None]] = None,
    ) -> StudyProgress:
        """Execute pending runs (all of them unless ``max_runs`` caps it).

        Already-recorded runs are skipped without touching their server
        state.  ``progress`` (if given) is called with each finished
        ``(RunSpec, record)`` pair — the CLI uses it for per-run lines.
        """
        self._check_spec()
        runs = generate_runs(self.spec)
        done = self.completed_runs()
        outcome = StudyProgress()
        budget = len(runs) if max_runs is None else max(int(max_runs), 0)
        warmed = False
        for run in runs:
            if run.run_id in done:
                outcome.skipped.append(run.run_id)
                continue
            if len(outcome.executed) >= budget:
                outcome.remaining.append(run.run_id)
                continue
            if not warmed:
                self._warmup()
                warmed = True
            record = self._execute_run(run)
            self._append(record)
            outcome.executed.append(run.run_id)
            if progress is not None:
                progress(run, record)
        return outcome

    def run_dir(self, run: RunSpec) -> str:
        return os.path.join(self.study_dir, "runs", run.run_id.replace("/", "_"))

    def _warmup(self) -> None:
        """Unrecorded throwaway runs soaking up process cold-start cost.

        Executed once per :meth:`run` session, right before the first run
        that will actually execute (a resume that skips everything never
        pays it).  Results are discarded and the state dir removed — the
        only purpose is warming imports, allocators and compiler paths so
        the first *recorded* run isn't systematically inflated.
        """
        import numpy as np

        from repro.studies.spec import BASELINE

        baseline = self.spec.baseline_config()
        for index in range(max(self.spec.warmup_runs, 0)):
            seed_seq = np.random.SeedSequence([self.spec.seed, 0xAB1A7E, index])
            warmup = RunSpec(
                run_id=f"_warmup/w{index}",
                condition=BASELINE,
                replicate=index,
                seed=int(seed_seq.generate_state(1, np.uint32)[0]),
                config=baseline,
            )
            self._execute_run(warmup)
            shutil.rmtree(self.run_dir(warmup), ignore_errors=True)

    def _execute_run(self, run: RunSpec) -> Dict[str, object]:
        """Execute one replicate on a fresh private JobServer."""
        state_dir = self.run_dir(run)
        # A previous attempt at this run may have died mid-flight; its
        # half-written store must not requeue stale jobs into the retry.
        shutil.rmtree(state_dir, ignore_errors=True)
        config = run.config
        server = JobServer(
            state_dir=state_dir,
            workers=config.workers,
            cache=CompilationCache(capacity=config.cache_capacity),
            admission=config.admission,
            coalesce=config.coalesce,
            memoize_circuits=config.memoize_circuits,
            prefer_measured=config.prefer_measured,
            tracing=config.tracing,
        )
        try:
            jobs = self._build_jobs(run)
            start = time.perf_counter()
            job_ids = [server.submit(job) for job in jobs]
            server.drain()
            wall_time_s = time.perf_counter() - start
            metrics = self._harvest(server, job_ids, wall_time_s)
        finally:
            server.close()
        record = run.as_dict()
        record.update(
            {
                "type": "run",
                "status": "completed",
                "study": self.spec.name,
                "wall_time_s": wall_time_s,
                "jobs": len(job_ids),
                "metrics": metrics,
                "finished_at": time.time(),  # lint: allow(wall-clock) — run metadata, never seeds anything
            }
        )
        return record

    def _build_jobs(self, run: RunSpec) -> List[Job]:
        """The job list of one replicate, seeded from the run seed.

        Per-job seeds are spawned from the run's ``SeedSequence`` (the same
        derivation ``api.derive_batch_seeds`` uses), workloads and
        priorities cycle round-robin, and each job inherits the workload's
        registered compiler/backend unless the run config overrides them.
        """
        import numpy as np

        spec = self.spec
        children = np.random.SeedSequence(run.seed).spawn(spec.jobs_per_replicate)
        jobs: List[Job] = []
        for index, child in enumerate(children):
            workload = get_workload(spec.workloads[index % len(spec.workloads)])
            jobs.append(
                Job(
                    kind="execute",
                    source=workload.source,
                    compiler=run.config.compiler or workload.compiler,
                    backend=run.config.backend or workload.backend,
                    seed=int(child.generate_state(1, np.uint32)[0]),
                    input_range=workload.input_range,
                    priority=spec.priorities[index % len(spec.priorities)],
                    name=f"{run.run_id}/{workload.name}-{index}",
                )
            )
        return jobs

    def _harvest(
        self, server: JobServer, job_ids: List[str], wall_time_s: float
    ) -> Dict[str, float]:
        """Fold job results, telemetry and cache stats into one flat dict."""
        snapshot = server.telemetry.snapshot()
        counters = snapshot.get("counters", {})
        histograms = snapshot.get("histograms", {})

        completed = failed = 0
        latencies: List[float] = []
        verified = 0
        measured_estimates = 0
        for job_id in job_ids:
            job = server.get(job_id)
            if job is None:
                continue
            if job.status.value == "completed":
                completed += 1
                result = job.result or {}
                latency = result.get("latency_ms")
                if isinstance(latency, (int, float)):
                    latencies.append(float(latency))
                if result.get("verified"):
                    verified += 1
                if result.get("estimate_source") == "measured":
                    measured_estimates += 1
            elif job.status.value == "failed":
                failed += 1

        def hist_mean(name: str) -> float:
            payload = histograms.get(name, {})
            count = payload.get("count", 0)
            return float(payload.get("sum", 0.0)) / count if count else 0.0

        def hist_percentile(name: str, q: float) -> float:
            payload = histograms.get(name)
            return percentile_from_snapshot(payload, q) if payload else 0.0

        execute_jobs = float(counters.get("execute_jobs", 0.0))
        memo_hits = float(counters.get("circuit_memo_hits", 0.0))
        memo_lookups = memo_hits + float(counters.get("circuit_memo_misses", 0.0))
        cache_stats = server.cache.stats.as_dict() if server.cache is not None else {}
        metrics: Dict[str, float] = {
            "jobs_submitted": float(len(job_ids)),
            "jobs_completed": float(completed),
            "jobs_failed": float(failed),
            "jobs_shed": float(counters.get("jobs_shed", 0.0)),
            "throughput_jobs_per_s": completed / wall_time_s if wall_time_s > 0 else 0.0,
            "mean_wait_s": hist_mean("job_wait_s"),
            "mean_run_s": hist_mean("job_run_s"),
            "p50_run_s": hist_percentile("job_run_s", 0.5),
            "p99_run_s": hist_percentile("job_run_s", 0.99),
            "p50_wait_s": hist_percentile("job_wait_s", 0.5),
            "p99_wait_s": hist_percentile("job_wait_s", 0.99),
            "coalesced_fraction": (
                float(counters.get("coalesced_jobs", 0.0)) / execute_jobs
                if execute_jobs
                else 0.0
            ),
            "cache_hit_rate": float(cache_stats.get("hit_rate", 0.0)),
            "cache_hits": float(cache_stats.get("hits", 0.0)),
            "cache_misses": float(cache_stats.get("misses", 0.0)),
            # The hot-path circuit memo is the first caching tier; repeats it
            # absorbs never reach the CompilationCache, so its hit rate is
            # the one the compile-cache ablation actually moves.
            "memo_hit_rate": memo_hits / memo_lookups if memo_lookups else 0.0,
            "mean_latency_ms": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "verified_fraction": verified / completed if completed else 0.0,
            "measured_estimate_fraction": (
                measured_estimates / completed if completed else 0.0
            ),
        }
        return metrics


def load_study_spec(study_dir: str) -> Optional[StudySpec]:
    """The spec a study directory was started with, or None if no header.

    This is what lets ``study resume``/``study report`` work from the
    directory alone — the JSONL header pins the exact spec, so the resumed
    matrix (and its seeds) is identical to the original.
    """
    log_path = os.path.join(study_dir, STUDY_LOG)
    if not os.path.exists(log_path):
        return None
    with open(log_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and record.get("type") == "spec":
                return StudySpec.from_dict(record.get("spec", {}))
    return None


def run_study_spec(
    spec: StudySpec,
    study_dir: str,
    max_runs: Optional[int] = None,
    progress: Optional[Callable[[RunSpec, Dict[str, object]], None]] = None,
) -> StudyProgress:
    """Convenience wrapper: build a :class:`StudyRunner` and run it."""
    return StudyRunner(spec, study_dir).run(max_runs=max_runs, progress=progress)
