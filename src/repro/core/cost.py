"""The FHE-aware analytical cost model (paper Sec. 5.3.1).

The cost of an expression is the weighted sum

.. math::

    \\mathrm{Cost}(e) = w_{ops} \\cdot C_{ops}(e)
                      + w_{depth} \\cdot D_{circuit}(e)
                      + w_{mult} \\cdot D_{mult}(e)

with the per-operation costs used in the paper:

=================  =====
operation          cost
=================  =====
vector add / sub   1
vector mul         100
rotation           50
scalar +, -, *     250
=================  =====

These relative values incentivise vectorization (scalar operations are
penalised), prefer rotations over multiplications, and make additions nearly
free — exactly the ordering of real BFV operation latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.analysis import OpCounts, circuit_depth, count_ops, multiplicative_depth
from repro.ir.nodes import Expr

__all__ = ["OperationCosts", "CostWeights", "CostModel", "expression_cost"]


@dataclass(frozen=True)
class OperationCosts:
    """Relative latency assigned to each operation class."""

    vec_add: float = 1.0
    vec_sub: float = 1.0
    vec_mul: float = 100.0
    vec_neg: float = 1.0
    rotation: float = 50.0
    scalar_op: float = 250.0
    #: Vec constructors are not homomorphic operations; by default they are
    #: free (client-side packing).  Lowering accounts for any rotations and
    #: masks they induce explicitly.
    vec_constructor: float = 0.0

    def operations_cost(self, counts: OpCounts) -> float:
        """Total operation cost :math:`C_{ops}` for the given counts."""
        return (
            self.vec_add * counts.vec_add
            + self.vec_sub * counts.vec_sub
            + self.vec_mul * counts.vec_mul
            + self.vec_neg * counts.vec_neg
            + self.rotation * counts.rotations
            + self.scalar_op * counts.scalar_ops
            + self.vec_constructor * counts.vec_constructors
        )


@dataclass(frozen=True)
class CostWeights:
    """Weights of the three cost terms.

    The paper's default is ``(1, 1, 1)``; the reward-weight ablation
    (Table 1) additionally evaluates ``(1, 50, 50)``, ``(1, 100, 100)`` and
    ``(1, 150, 150)``.
    """

    ops: float = 1.0
    depth: float = 1.0
    mult_depth: float = 1.0


@dataclass(frozen=True)
class CostModel:
    """Callable cost model combining operation cost and depth terms."""

    operation_costs: OperationCosts = field(default_factory=OperationCosts)
    weights: CostWeights = field(default_factory=CostWeights)

    def operations_cost(self, expr: Expr) -> float:
        """The :math:`C_{ops}` term alone."""
        return self.operation_costs.operations_cost(count_ops(expr))

    def cost(self, expr: Expr) -> float:
        """Full weighted cost of ``expr``."""
        counts = count_ops(expr)
        ops_cost = self.operation_costs.operations_cost(counts)
        return (
            self.weights.ops * ops_cost
            + self.weights.depth * circuit_depth(expr)
            + self.weights.mult_depth * multiplicative_depth(expr)
        )

    def __call__(self, expr: Expr) -> float:
        return self.cost(expr)

    def breakdown(self, expr: Expr) -> dict:
        """Per-term breakdown used for reporting and debugging."""
        counts = count_ops(expr)
        ops_cost = self.operation_costs.operations_cost(counts)
        depth = circuit_depth(expr)
        mult = multiplicative_depth(expr)
        return {
            "operations_cost": ops_cost,
            "circuit_depth": depth,
            "multiplicative_depth": mult,
            "total": (
                self.weights.ops * ops_cost
                + self.weights.depth * depth
                + self.weights.mult_depth * mult
            ),
            "counts": counts.as_dict(),
        }


#: Default cost model matching the paper's configuration.
DEFAULT_COST_MODEL = CostModel()


def expression_cost(expr: Expr, model: CostModel = DEFAULT_COST_MODEL) -> float:
    """Convenience wrapper around :meth:`CostModel.cost`."""
    return model.cost(expr)
