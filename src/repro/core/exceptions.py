"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CompilationError",
    "NoiseBudgetExhausted",
    "RotationKeyMissing",
    "InvalidParameters",
]


class ReproError(Exception):
    """Base class of every error raised by the repro package."""


class CompilationError(ReproError):
    """A compiler pass failed (ill-typed IR, lowering failure, ...)."""


class InvalidParameters(ReproError):
    """FHE encryption parameters are inconsistent or insecure."""


class NoiseBudgetExhausted(ReproError):
    """A ciphertext's noise budget reached zero; decryption would fail.

    Mirrors what happens in SEAL when ``invariant_noise_budget`` hits zero:
    the circuit is invalid for the chosen parameters.
    """

    def __init__(self, message: str, consumed_bits: float = 0.0) -> None:
        super().__init__(message)
        self.consumed_bits = consumed_bits


class RotationKeyMissing(ReproError):
    """A rotation was requested for a step with no generated Galois key."""

    def __init__(self, step: int) -> None:
        super().__init__(f"no Galois key generated for rotation step {step}")
        self.step = step
