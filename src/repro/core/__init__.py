"""Core configuration, cost model and exceptions shared across the compiler."""

from repro.core.cost import CostModel, CostWeights, OperationCosts, expression_cost
from repro.core.exceptions import (
    CompilationError,
    NoiseBudgetExhausted,
    ReproError,
    RotationKeyMissing,
)

__all__ = [
    "CostModel",
    "CostWeights",
    "OperationCosts",
    "expression_cost",
    "ReproError",
    "CompilationError",
    "NoiseBudgetExhausted",
    "RotationKeyMissing",
]
