"""Dataset container with ICI deduplication and benchmark exclusion.

Mirrors the paper's post-processing pipeline (Sec. 6):

1. parse and validate every generated expression (invalid ones never reach
   this layer since we generate IR directly);
2. deduplicate by ICI canonical form — programs that differ only in
   identifier names or non-0/1 constants collapse to the same sample;
3. remove any sample whose canonical form matches one of the evaluation
   benchmarks, so evaluation measures generalization to unseen programs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.ir.nodes import Expr
from repro.ir.parser import parse
from repro.ir.printer import to_sexpr
from repro.ir.tokenize import canonical_form

__all__ = ["ExpressionDataset", "build_dataset"]


@dataclass
class ExpressionDataset:
    """A deduplicated collection of IR expressions."""

    expressions: List[Expr] = field(default_factory=list)
    #: Canonical forms present (maintained for O(1) dedup checks).
    canonical_forms: Set[str] = field(default_factory=set)
    #: Canonical forms that must never enter the dataset (benchmarks).
    excluded_forms: Set[str] = field(default_factory=set)
    #: How many candidates were rejected as duplicates / exclusions.
    duplicates_rejected: int = 0
    exclusions_rejected: int = 0

    def __len__(self) -> int:
        return len(self.expressions)

    def __iter__(self):
        return iter(self.expressions)

    def __getitem__(self, index: int) -> Expr:
        return self.expressions[index]

    # -- construction ---------------------------------------------------------------
    def exclude(self, benchmarks: Iterable[Expr]) -> None:
        """Register benchmark expressions whose canonical forms are banned."""
        for expr in benchmarks:
            self.excluded_forms.add(canonical_form(expr))

    def add(self, expr: Expr) -> bool:
        """Add ``expr`` unless it is a duplicate or matches a benchmark."""
        form = canonical_form(expr)
        if form in self.excluded_forms:
            self.exclusions_rejected += 1
            return False
        if form in self.canonical_forms:
            self.duplicates_rejected += 1
            return False
        self.canonical_forms.add(form)
        self.expressions.append(expr)
        return True

    def extend(self, expressions: Iterable[Expr]) -> int:
        """Add many expressions; returns how many were actually added."""
        added = 0
        for expr in expressions:
            if self.add(expr):
                added += 1
        return added

    # -- splits ---------------------------------------------------------------------------
    def split(
        self, validation_fraction: float = 0.1, seed: Optional[int] = 0
    ) -> Tuple[List[Expr], List[Expr]]:
        """Shuffle and split into (train, validation) lists."""
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.expressions))
        cut = int(len(order) * validation_fraction)
        validation = [self.expressions[i] for i in order[:cut]]
        train = [self.expressions[i] for i in order[cut:]]
        return train, validation

    # -- persistence ---------------------------------------------------------------------------
    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write one s-expression per line (the paper's dataset format)."""
        directory = os.path.dirname(os.fspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            for expr in self.expressions:
                handle.write(to_sexpr(expr) + "\n")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "ExpressionDataset":
        """Load a dataset saved by :meth:`save`."""
        dataset = cls()
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    dataset.add(parse(line))
        return dataset


def build_dataset(
    generator,
    target_size: int,
    benchmarks: Optional[Sequence[Expr]] = None,
    max_attempts_factor: int = 20,
) -> ExpressionDataset:
    """Draw from ``generator.generate()`` until ``target_size`` unique samples.

    ``max_attempts_factor`` bounds the total number of generator calls at
    ``target_size * max_attempts_factor`` so a low-diversity generator cannot
    loop forever.
    """
    dataset = ExpressionDataset()
    if benchmarks:
        dataset.exclude(benchmarks)
    attempts = 0
    limit = target_size * max_attempts_factor
    while len(dataset) < target_size and attempts < limit:
        dataset.add(generator.generate())
        attempts += 1
    return dataset
