"""Motif-based synthetic training data ("LLM-like" corpus).

The paper synthesizes its training corpus with Gemini 2.5 Flash, prompting
it with the IR grammar, the rewrite rules and real-world kernels so the
generated expressions contain *optimizable structure*.  No LLM is available
offline, so this generator reproduces the property the ablation depends on
directly: every sample is built from one of the real-computation motifs the
prompt showcases (Appendix F), with randomised sizes, variable names and
perturbations:

* dot-product / sum-of-products reductions,
* element-wise squared differences (L2 distance),
* element-wise matrix/vector addition and multiplication (isomorphic Vec),
* stencil sums (blur / gradient style),
* factorable sums sharing a common factor,
* unbalanced product or addition chains (depth-reduction opportunities),
* mixed Vec elements (non-isomorphic vectorization opportunities),
* union-cardinality style bit arithmetic.

The distribution is therefore rich in exactly the rewrite opportunities the
TRS targets, while the uniform random generator is not — which is the
contrast the LLM-vs-random ablation (Fig. 8) measures.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.ir.nodes import Add, Const, Expr, Mul, Neg, Sub, Var, Vec

__all__ = ["SyntheticKernelGenerator"]


class SyntheticKernelGenerator:
    """Generates expressions drawn from realistic computational motifs."""

    def __init__(self, seed: Optional[int] = None, max_size: int = 8) -> None:
        if max_size < 2:
            raise ValueError("max_size must be at least 2")
        self.max_size = max_size
        self._rng = np.random.default_rng(seed)
        self._motifs: List[Callable[[], Expr]] = [
            self._dot_product,
            self._squared_difference,
            self._elementwise_binary,
            self._stencil_sum,
            self._factorable_sum,
            self._product_chain,
            self._mixed_vector,
            self._union_cardinality,
            self._weighted_sum,
            self._polynomial,
        ]

    # -- helpers -------------------------------------------------------------------
    def _size(self, minimum: int = 2) -> int:
        return int(self._rng.integers(minimum, self.max_size + 1))

    def _vars(self, prefix: str, count: int) -> List[Var]:
        offset = int(self._rng.integers(0, 4))
        return [Var(f"{prefix}{offset}_{index}") for index in range(count)]

    def _sum(self, terms: Sequence[Expr]) -> Expr:
        result = terms[0]
        for term in terms[1:]:
            result = Add(result, term)
        return result

    # -- motifs ----------------------------------------------------------------------
    def _dot_product(self) -> Expr:
        size = self._size()
        a = self._vars("a", size)
        b = self._vars("b", size)
        return self._sum([Mul(x, y) for x, y in zip(a, b)])

    def _squared_difference(self) -> Expr:
        size = self._size()
        a = self._vars("p", size)
        b = self._vars("q", size)
        diffs = [Sub(x, y) for x, y in zip(a, b)]
        if self._rng.random() < 0.5:
            # Element-wise squared error as a vector result.
            return Vec(*[Mul(d, d) for d in diffs])
        # L2-distance style reduction.
        return self._sum([Mul(d, d) for d in diffs])

    def _elementwise_binary(self) -> Expr:
        size = self._size()
        a = self._vars("m", size)
        b = self._vars("n", size)
        op = self._rng.choice(["add", "sub", "mul"])
        if op == "add":
            elements = [Add(x, y) for x, y in zip(a, b)]
        elif op == "sub":
            elements = [Sub(x, y) for x, y in zip(a, b)]
        else:
            elements = [Mul(x, y) for x, y in zip(a, b)]
        return Vec(*elements)

    def _stencil_sum(self) -> Expr:
        size = self._size(minimum=3)
        pixels = self._vars("px", size + 2)
        elements = []
        for index in range(size):
            window = pixels[index : index + 3]
            elements.append(Add(Add(window[0], window[1]), window[2]))
        return Vec(*elements)

    def _factorable_sum(self) -> Expr:
        size = self._size()
        shared = Var(f"w{int(self._rng.integers(0, 4))}")
        others = self._vars("u", size)
        terms = [Mul(shared, other) for other in others]
        return self._sum(terms)

    def _product_chain(self) -> Expr:
        size = self._size(minimum=3)
        values = self._vars("z", size)
        result: Expr = values[0]
        for value in values[1:]:
            result = Mul(result, value)
        return result

    def _mixed_vector(self) -> Expr:
        size = self._size(minimum=3)
        a = self._vars("s", size)
        b = self._vars("t", size)
        elements: List[Expr] = []
        for index in range(size):
            roll = self._rng.random()
            if roll < 0.5:
                elements.append(Mul(a[index], b[index]))
            elif roll < 0.8:
                elements.append(Add(a[index], b[index]))
            else:
                elements.append(Sub(a[index], b[index]))
        return Vec(*elements)

    def _union_cardinality(self) -> Expr:
        size = self._size()
        a = self._vars("bitA", size)
        b = self._vars("bitB", size)
        # OR(a, b) = a + b - a*b for 0/1 values; sum the per-bit ORs.
        terms = [Sub(Add(x, y), Mul(x, y)) for x, y in zip(a, b)]
        return self._sum(terms)

    def _weighted_sum(self) -> Expr:
        size = self._size()
        values = self._vars("v", size)
        weights = [Const(int(self._rng.integers(1, 6))) for _ in range(size)]
        return self._sum([Mul(w, v) for w, v in zip(weights, values)])

    def _polynomial(self) -> Expr:
        degree = int(self._rng.integers(2, 5))
        x = Var(f"x{int(self._rng.integers(0, 4))}")
        coefficients = [Const(int(self._rng.integers(1, 6))) for _ in range(degree + 1)]
        terms: List[Expr] = [coefficients[0]]
        power: Expr = x
        for index in range(1, degree + 1):
            terms.append(Mul(coefficients[index], power))
            power = Mul(power, x)
        return self._sum(terms)

    # -- perturbations -----------------------------------------------------------------
    def _perturb(self, expr: Expr) -> Expr:
        """Apply cosmetic perturbations that preserve semantics (noise for diversity)."""
        roll = self._rng.random()
        if roll < 0.15:
            return Add(expr, Const(0))
        if roll < 0.25:
            return Mul(Const(1), expr)
        if roll < 0.32 and not isinstance(expr, Vec):
            return Neg(Neg(expr))
        return expr

    # -- public API -------------------------------------------------------------------------
    def generate(self) -> Expr:
        """One expression drawn from a random motif."""
        motif = self._motifs[int(self._rng.integers(0, len(self._motifs)))]
        return self._perturb(motif())

    def generate_many(self, count: int) -> List[Expr]:
        """Generate ``count`` expressions (duplicates possible; dedup downstream)."""
        return [self.generate() for _ in range(count)]
