"""Training-data generation for the RL agent.

Two generators mirror the paper's data ablation (Sec. 6 and Fig. 8):

* :mod:`repro.datagen.random_gen` -- the uniform random expression generator
  of Appendix H.2 (random operator/leaf choices balanced over depth and
  vector size);
* :mod:`repro.datagen.synthetic` -- the stand-in for the paper's
  LLM-synthesized corpus: a motif-driven generator that produces expressions
  with the realistic, *optimizable* structure the LLM prompt asks for
  (shared sub-expressions, factorable sums, isomorphic vector elements,
  reduction trees, stencils), see DESIGN.md for the substitution rationale.

:mod:`repro.datagen.dataset` wraps either stream with ICI-canonical-form
deduplication, benchmark exclusion and train/validation splitting.
"""

from repro.datagen.random_gen import RandomExpressionGenerator
from repro.datagen.synthetic import SyntheticKernelGenerator
from repro.datagen.dataset import ExpressionDataset, build_dataset

__all__ = [
    "RandomExpressionGenerator",
    "SyntheticKernelGenerator",
    "ExpressionDataset",
    "build_dataset",
]
