"""Uniform random IR expression generation (paper Appendix H.2).

The generator recursively builds expression trees controlled by two
parameters, the maximum depth and the vector size, sampling operators and
leaves uniformly.  Sampling is balanced across all (depth, vector-size)
combinations so a corpus covers a wide range of shapes — which is exactly
why it under-represents the *structured, optimizable* patterns that make the
motif-based generator (and the paper's LLM corpus) better training data.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ir.nodes import Add, Const, Expr, Mul, Neg, Sub, Var, Vec

__all__ = ["RandomExpressionGenerator"]

_SCALAR_OPS = ("+", "-", "*", "neg")


class RandomExpressionGenerator:
    """Generates random scalar/vector expressions with uniform operator choice."""

    def __init__(
        self,
        max_depth: int = 8,
        max_vector_size: int = 8,
        num_variables: int = 12,
        constant_range: int = 7,
        seed: Optional[int] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if max_vector_size < 1:
            raise ValueError("max_vector_size must be at least 1")
        self.max_depth = max_depth
        self.max_vector_size = max_vector_size
        self.num_variables = num_variables
        self.constant_range = constant_range
        self._rng = np.random.default_rng(seed)

    # -- leaves ------------------------------------------------------------------
    def _leaf(self) -> Expr:
        if self._rng.random() < 0.8:
            index = int(self._rng.integers(0, self.num_variables))
            return Var(f"x{index}")
        value = int(self._rng.integers(1, self.constant_range + 1))
        return Const(value)

    # -- scalar expressions ----------------------------------------------------------
    def _scalar(self, depth: int) -> Expr:
        if depth <= 0 or self._rng.random() < 0.15:
            return self._leaf()
        op = self._rng.choice(_SCALAR_OPS)
        if op == "neg":
            return Neg(self._scalar(depth - 1))
        left = self._scalar(depth - 1)
        right = self._scalar(depth - 1)
        if op == "+":
            return Add(left, right)
        if op == "-":
            return Sub(left, right)
        return Mul(left, right)

    # -- public API ----------------------------------------------------------------------
    def generate(
        self, depth: Optional[int] = None, vector_size: Optional[int] = None
    ) -> Expr:
        """Generate one expression.

        Depth and vector size are sampled uniformly (balanced coverage) when
        not provided, matching the Appendix H.2 procedure.
        """
        if depth is None:
            depth = int(self._rng.integers(1, self.max_depth + 1))
        if vector_size is None:
            vector_size = int(self._rng.integers(1, self.max_vector_size + 1))
        elements = [self._scalar(depth) for _ in range(vector_size)]
        if vector_size == 1 and self._rng.random() < 0.5:
            return elements[0]
        return Vec(*elements)

    def generate_many(self, count: int) -> List[Expr]:
        """Generate ``count`` expressions (possibly containing duplicates)."""
        return [self.generate() for _ in range(count)]
