"""The FHE-rewriting environment (the MDP of paper Sec. 5).

States are IR expressions; the observation exposed to the policy contains
the ICI token ids of the current expression, the action mask over rewrite
rules (plus ``END``) and, for the hierarchical policy, the number of match
locations of every rule.  Actions are ``(rule_index, location_index)``
pairs; selecting ``END`` (or reaching the step limit) terminates the episode
and triggers the terminal reward.

The environment follows the Gym ``reset``/``step`` convention but is
dependency-free.  Multiple independent copies can be stepped in a simple
round-robin fashion by :class:`repro.rl.ppo.PPOTrainer`, mirroring the
paper's 8 parallel environments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.nodes import Expr
from repro.ir.tokenize import ICITokenizer
from repro.rl.reward import RewardConfig
from repro.trs.registry import RuleSet, default_ruleset

__all__ = ["EnvConfig", "Observation", "FheRewriteEnv"]


@dataclass
class EnvConfig:
    """Static configuration of the rewriting environment."""

    max_steps: int = 75
    max_locations: int = 16
    max_tokens: int = 256
    reward: RewardConfig = field(default_factory=RewardConfig)


@dataclass
class Observation:
    """What the policy sees at each step."""

    tokens: np.ndarray            # (max_tokens,) int token ids
    padding_mask: np.ndarray      # (max_tokens,) 1 for real tokens
    rule_mask: np.ndarray         # (action_count,) bool, True = applicable (END always True)
    location_counts: np.ndarray   # (rule_count,) number of match locations per rule


class FheRewriteEnv:
    """A single environment instance optimizing one expression per episode."""

    def __init__(
        self,
        expression_source: Callable[[], Expr],
        ruleset: Optional[RuleSet] = None,
        tokenizer: Optional[ICITokenizer] = None,
        config: Optional[EnvConfig] = None,
    ) -> None:
        self.expression_source = expression_source
        self.ruleset = ruleset if ruleset is not None else default_ruleset()
        self.config = config if config is not None else EnvConfig()
        self.tokenizer = (
            tokenizer
            if tokenizer is not None
            else ICITokenizer(max_length=self.config.max_tokens)
        )
        self.current: Optional[Expr] = None
        self.initial_cost: float = 0.0
        self.current_cost: float = 0.0
        self.initial_latency_ms: float = 0.0
        self.steps_taken: int = 0
        self.episode_reward: float = 0.0

    # -- helpers -----------------------------------------------------------------
    @property
    def action_count(self) -> int:
        return self.ruleset.action_count

    @property
    def rule_count(self) -> int:
        return len(self.ruleset)

    @property
    def end_index(self) -> int:
        return self.ruleset.end_index

    def _cost(self, expr: Expr) -> float:
        return self.config.reward.cost_model.cost(expr)

    def _observation(self) -> Observation:
        assert self.current is not None
        tokens = np.asarray(self.tokenizer.encode(self.current), dtype=np.int64)
        padding = np.asarray(self.tokenizer.attention_mask(tokens), dtype=np.int64)
        location_counts = np.zeros(self.rule_count, dtype=np.int64)
        rule_mask = np.zeros(self.action_count, dtype=bool)
        for index, rule in enumerate(self.ruleset):
            locations = rule.find(self.current)
            if locations:
                location_counts[index] = min(len(locations), self.config.max_locations)
                rule_mask[index] = True
        rule_mask[self.end_index] = True
        return Observation(
            tokens=tokens,
            padding_mask=padding,
            rule_mask=rule_mask,
            location_counts=location_counts,
        )

    # -- gym-style interface ----------------------------------------------------------
    def reset(self, expr: Optional[Expr] = None) -> Observation:
        """Start a new episode on ``expr`` (or one drawn from the source)."""
        self.current = expr if expr is not None else self.expression_source()
        self.initial_cost = self._cost(self.current)
        self.current_cost = self.initial_cost
        if self.config.reward.use_latency_terminal:
            self.initial_latency_ms = self.config.reward.simulated_latency_ms(self.current)
        self.steps_taken = 0
        self.episode_reward = 0.0
        return self._observation()

    def step(self, action: Tuple[int, int]) -> Tuple[Observation, float, bool, Dict]:
        """Apply ``(rule_index, location_index)`` and return (obs, reward, done, info)."""
        if self.current is None:
            raise RuntimeError("step() called before reset()")
        rule_index, location_index = int(action[0]), int(action[1])
        reward_config = self.config.reward
        self.steps_taken += 1
        done = False
        info: Dict = {"rule": None, "invalid": False}

        if rule_index == self.end_index:
            done = True
            reward = 0.0
            info["rule"] = "END"
        else:
            rule = self.ruleset[rule_index]
            locations = rule.find(self.current)
            if not locations:
                reward = -reward_config.invalid_action_penalty
                info["invalid"] = True
            else:
                location_index = min(location_index, len(locations) - 1)
                cost_before = self.current_cost
                self.current = rule.apply_at(self.current, locations[location_index])
                self.current_cost = self._cost(self.current)
                reward = reward_config.step_reward(cost_before, self.current_cost)
                info["rule"] = rule.name

        if self.steps_taken >= self.config.max_steps:
            done = True
        if done:
            if reward_config.use_latency_terminal:
                # Ground the terminal in simulated execution latency via the
                # (accounting-only) execution backend instead of the
                # analytical expression cost.
                final_latency = reward_config.simulated_latency_ms(self.current)
                reward += reward_config.terminal_reward(
                    self.initial_latency_ms, final_latency
                )
                info["initial_latency_ms"] = self.initial_latency_ms
                info["final_latency_ms"] = final_latency
            else:
                reward += reward_config.terminal_reward(self.initial_cost, self.current_cost)
            info["initial_cost"] = self.initial_cost
            info["final_cost"] = self.current_cost
            info["improvement"] = (
                (self.initial_cost - self.current_cost) / self.initial_cost
                if self.initial_cost > 0
                else 0.0
            )

        self.episode_reward += reward
        observation = self._observation()
        return observation, float(reward), done, info


def dataset_source(expressions: Sequence[Expr], seed: Optional[int] = None) -> Callable[[], Expr]:
    """An expression source that samples uniformly from a dataset."""
    if not expressions:
        raise ValueError("dataset_source requires at least one expression")
    rng = np.random.default_rng(seed)

    def _sample() -> Expr:
        return expressions[int(rng.integers(0, len(expressions)))]

    return _sample
