"""Program autoencoders for the encoder-architecture ablation (Fig. 11, Table 7).

The paper validates its choice of a Transformer state encoder by training a
Transformer autoencoder and a GRU autoencoder on random IR expressions and
comparing reconstruction accuracy.  This module implements both with a
shared, simple decoding scheme: the encoder produces a fixed-length latent
vector; the decoder predicts the token at every position from the latent
vector concatenated with that position's sinusoidal encoding.  Both models
therefore differ *only* in their encoder, which is exactly the variable the
ablation isolates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.nodes import Expr
from repro.ir.tokenize import ICITokenizer
from repro.nn.layers import MLP, Embedding, Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerEncoder, positional_encoding
from repro.nn.gru import GRU

__all__ = [
    "AutoencoderConfig",
    "ProgramAutoencoder",
    "TransformerAutoencoder",
    "GRUAutoencoder",
    "train_autoencoder",
    "reconstruction_accuracy",
]


@dataclass
class AutoencoderConfig:
    """Shared configuration of both autoencoders."""

    vocab_size: int = 128
    model_dim: int = 64
    latent_dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    max_tokens: int = 64
    seed: Optional[int] = 0


class ProgramAutoencoder(Module):
    """Base class: latent encoding + per-position token decoder."""

    def __init__(self, config: AutoencoderConfig) -> None:
        super().__init__()
        self.config = config
        self._positional = positional_encoding(config.max_tokens, config.model_dim)
        self.decoder = MLP(
            config.latent_dim + config.model_dim,
            [config.model_dim],
            config.vocab_size,
            seed=config.seed,
        )

    # -- to be provided by subclasses ------------------------------------------------
    def encode_latent(self, token_ids: np.ndarray, padding_mask: np.ndarray) -> Tensor:
        raise NotImplementedError

    # -- shared decode / loss ----------------------------------------------------------
    def logits(self, token_ids: np.ndarray, padding_mask: np.ndarray) -> Tensor:
        """Per-position vocabulary logits of shape (batch, length, vocab)."""
        token_ids = np.atleast_2d(token_ids)
        padding_mask = np.atleast_2d(padding_mask)
        batch, length = token_ids.shape
        latent = self.encode_latent(token_ids, padding_mask)  # (batch, latent)
        positions = Tensor(self._positional[:length])  # (length, model_dim)
        latent_tiled = latent.reshape(batch, 1, self.config.latent_dim) * Tensor(
            np.ones((1, length, 1))
        )
        positions_tiled = positions.reshape(1, length, self.config.model_dim) * Tensor(
            np.ones((batch, 1, 1))
        )
        decoder_input = Tensor.concatenate([latent_tiled, positions_tiled], axis=-1)
        return self.decoder(decoder_input)

    def loss(self, token_ids: np.ndarray, padding_mask: np.ndarray) -> Tensor:
        """Masked cross-entropy reconstruction loss."""
        token_ids = np.atleast_2d(token_ids)
        padding_mask = np.atleast_2d(padding_mask).astype(np.float64)
        logits = self.logits(token_ids, padding_mask)
        log_probs = logits.log_softmax(axis=-1)
        batch, length = token_ids.shape
        batch_index = np.repeat(np.arange(batch), length)
        position_index = np.tile(np.arange(length), batch)
        target_index = token_ids.reshape(-1)
        selected = log_probs[batch_index, position_index, target_index]
        mask = Tensor(padding_mask.reshape(-1))
        total = (selected * mask).sum() * (-1.0 / max(1.0, float(padding_mask.sum())))
        return total

    def reconstruct(self, token_ids: np.ndarray, padding_mask: np.ndarray) -> np.ndarray:
        """Greedy reconstruction (argmax per position)."""
        logits = self.logits(token_ids, padding_mask)
        return np.argmax(logits.numpy(), axis=-1)


class TransformerAutoencoder(ProgramAutoencoder):
    """Autoencoder whose encoder is the Transformer of the RL state model."""

    def __init__(self, config: Optional[AutoencoderConfig] = None) -> None:
        config = config if config is not None else AutoencoderConfig()
        super().__init__(config)
        self.encoder = TransformerEncoder(
            vocab_size=config.vocab_size,
            model_dim=config.model_dim,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            max_length=config.max_tokens,
            seed=config.seed,
        )
        self.to_latent = MLP(config.model_dim, [], config.latent_dim, seed=config.seed)

    def encode_latent(self, token_ids: np.ndarray, padding_mask: np.ndarray) -> Tensor:
        pooled = self.encoder.encode(token_ids, padding_mask)
        return self.to_latent(pooled)


class GRUAutoencoder(ProgramAutoencoder):
    """Autoencoder whose encoder is a bidirectional GRU."""

    def __init__(self, config: Optional[AutoencoderConfig] = None) -> None:
        config = config if config is not None else AutoencoderConfig()
        super().__init__(config)
        self.embedding = Embedding(config.vocab_size, config.model_dim, seed=config.seed)
        self.encoder = GRU(
            config.model_dim,
            config.model_dim // 2,
            num_layers=config.num_layers,
            bidirectional=True,
            seed=config.seed,
        )
        self.to_latent = MLP(config.model_dim, [], config.latent_dim, seed=config.seed)

    def encode_latent(self, token_ids: np.ndarray, padding_mask: np.ndarray) -> Tensor:
        token_ids = np.atleast_2d(token_ids)
        embedded = self.embedding(token_ids)
        summary = self.encoder.encode(embedded)
        return self.to_latent(summary)


def _encode_dataset(
    expressions: Sequence[Expr], tokenizer: ICITokenizer
) -> Tuple[np.ndarray, np.ndarray]:
    token_ids = np.stack([np.asarray(tokenizer.encode(expr)) for expr in expressions])
    padding = np.stack(
        [np.asarray(tokenizer.attention_mask(row)) for row in token_ids]
    )
    return token_ids, padding


def train_autoencoder(
    model: ProgramAutoencoder,
    expressions: Sequence[Expr],
    tokenizer: Optional[ICITokenizer] = None,
    epochs: int = 20,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    seed: Optional[int] = 0,
) -> Dict[str, List[float]]:
    """Train ``model`` to reconstruct ``expressions``; returns the loss curve."""
    tokenizer = tokenizer or ICITokenizer(max_length=model.config.max_tokens)
    token_ids, padding = _encode_dataset(expressions, tokenizer)
    optimizer = Adam(model.parameters(), learning_rate=learning_rate)
    rng = np.random.default_rng(seed)
    history: Dict[str, List[float]] = {"loss": [], "token_accuracy": []}
    for _ in range(epochs):
        order = rng.permutation(len(expressions))
        losses: List[float] = []
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            loss = model.loss(token_ids[batch], padding[batch])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        history["loss"].append(float(np.mean(losses)))
        accuracy = reconstruction_accuracy(model, token_ids, padding)
        history["token_accuracy"].append(accuracy["token_accuracy"])
    return history


def reconstruction_accuracy(
    model: ProgramAutoencoder, token_ids: np.ndarray, padding: np.ndarray
) -> Dict[str, float]:
    """Exact-match and per-token reconstruction accuracy (Table 7 metrics)."""
    predictions = model.reconstruct(token_ids, padding)
    mask = padding.astype(bool)
    token_correct = (predictions == token_ids) & mask
    token_accuracy = float(token_correct.sum()) / max(1, int(mask.sum()))
    exact = 0
    for row in range(token_ids.shape[0]):
        row_mask = mask[row]
        if np.array_equal(predictions[row][row_mask], token_ids[row][row_mask]):
            exact += 1
    exact_accuracy = exact / max(1, token_ids.shape[0])
    return {"token_accuracy": token_accuracy, "exact_match": exact_accuracy}
