"""Reward structure of the optimization MDP (paper Sec. 5.3).

The reward has two parts:

* a **step reward** after every action: the relative cost improvement
  ``(C_t - C_{t+1}) / C_t``;
* a **terminal reward** at the end of the episode: the total relative
  reduction ``(C_initial - C_final) / C_initial × 100``.

The underlying cost is the FHE-aware analytical cost of
:class:`repro.core.cost.CostModel`; its ``(w_ops, w_depth, w_mult)`` weights
are what the reward-weight ablation (Table 1) varies.

The terminal reward can optionally be grounded in *simulated execution
latency* instead of the analytical cost: :meth:`RewardConfig.simulated_latency_ms`
lowers the expression and runs it through the execution-backend registry on
the accounting-only ``cost-sim`` backend (no crypto, microseconds per
evaluation), which is exactly the latency the paper's Fig. 5 measures.
Enable with ``use_latency_terminal=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost import CostModel, CostWeights

__all__ = ["RewardConfig"]


@dataclass
class RewardConfig:
    """Configuration of the reward signal."""

    cost_model: CostModel = field(default_factory=CostModel)
    #: Include the terminal reward (the step-only ablation disables this).
    use_terminal_reward: bool = True
    #: Scale of the terminal reward; the paper multiplies the relative
    #: improvement by 100.
    terminal_scale: float = 100.0
    #: Small penalty per step, discouraging pointless rewrites.
    step_penalty: float = 0.01
    #: Penalty for selecting an inapplicable rule.
    invalid_action_penalty: float = 0.1
    #: Ground the terminal reward in simulated execution latency (lower +
    #: cost-sim backend) instead of the analytical expression cost.
    use_latency_terminal: bool = False
    #: Execution backend evaluating latency terminals (registry name).
    latency_backend: str = "cost-sim"

    @classmethod
    def with_weights(cls, ops: float, depth: float, mult: float, **kwargs) -> "RewardConfig":
        """Convenience constructor used by the reward-weight ablation."""
        model = CostModel(weights=CostWeights(ops=ops, depth=depth, mult_depth=mult))
        return cls(cost_model=model, **kwargs)

    # -- reward computation -----------------------------------------------------
    def step_reward(self, cost_before: float, cost_after: float) -> float:
        """Immediate reward of one rewrite."""
        if cost_before <= 0:
            return -self.step_penalty
        return (cost_before - cost_after) / cost_before - self.step_penalty

    def terminal_reward(self, initial_cost: float, final_cost: float) -> float:
        """End-of-episode reward (zero when terminal rewards are disabled)."""
        if not self.use_terminal_reward or initial_cost <= 0:
            return 0.0
        return ((initial_cost - final_cost) / initial_cost) * self.terminal_scale

    # -- execution-grounded rewards (through the backend registry) ---------------
    def simulated_latency_ms(self, expr) -> float:
        """Simulated execution latency of ``expr`` once lowered to a circuit.

        Lowers the expression and runs the instruction tape on the
        configured accounting-only backend — the same latency model every
        execution backend meters with, at a tiny fraction of a reference
        execution's wall-clock, which is what makes per-episode latency
        rewards affordable during RL rollouts.
        """
        from repro.backends.registry import get_backend
        from repro.compiler.lowering import lower

        program = lower(expr)
        report = get_backend(self.latency_backend).execute(program, inputs={})
        return report.latency_ms
