"""Proximal Policy Optimization (the training algorithm of paper Sec. 7.1).

The trainer follows the Stable-Baselines3 recipe the paper uses: collect
``steps_per_update`` transitions from several round-robin environment
copies, compute GAE advantages, then run ``update_epochs`` passes of
minibatch updates of the clipped surrogate objective with a value-function
loss and an entropy bonus.  Hyper-parameter defaults mirror the paper's
Table 4 (learning rate 1e-4, γ=0.99, λ=0.95, clip 0.2, 20 epochs, 2048 steps
per update, batch size 256, 8 environments), and every value can be scaled
down for the reproduction's short training runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rl.env import FheRewriteEnv, Observation
from repro.rl.rollout import RolloutBuffer

__all__ = ["PPOConfig", "TrainingHistory", "PPOTrainer"]


@dataclass
class PPOConfig:
    """PPO hyper-parameters (paper Table 4 defaults)."""

    learning_rate: float = 1e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_range: float = 0.2
    update_epochs: int = 20
    steps_per_update: int = 2048
    batch_size: int = 256
    value_coefficient: float = 0.5
    entropy_coefficient: float = 0.01
    max_grad_norm: float = 0.5
    seed: Optional[int] = None

    @classmethod
    def small(cls, seed: Optional[int] = 0) -> "PPOConfig":
        """A scaled-down configuration for tests and quick experiments."""
        return cls(
            learning_rate=3e-4,
            update_epochs=2,
            steps_per_update=64,
            batch_size=16,
            seed=seed,
        )


@dataclass
class TrainingHistory:
    """Per-update training statistics (the learning curves of Figs. 10/13)."""

    timesteps: List[int] = field(default_factory=list)
    mean_episode_reward: List[float] = field(default_factory=list)
    mean_episode_improvement: List[float] = field(default_factory=list)
    policy_loss: List[float] = field(default_factory=list)
    value_loss: List[float] = field(default_factory=list)
    entropy: List[float] = field(default_factory=list)
    wall_clock_s: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "timesteps": list(self.timesteps),
            "mean_episode_reward": list(self.mean_episode_reward),
            "mean_episode_improvement": list(self.mean_episode_improvement),
            "policy_loss": list(self.policy_loss),
            "value_loss": list(self.value_loss),
            "entropy": list(self.entropy),
            "wall_clock_s": list(self.wall_clock_s),
        }


class PPOTrainer:
    """Trains an actor-critic policy on the FHE-rewriting environment."""

    def __init__(
        self,
        policy,
        envs: Sequence[FheRewriteEnv],
        config: Optional[PPOConfig] = None,
    ) -> None:
        if not envs:
            raise ValueError("PPOTrainer requires at least one environment")
        self.policy = policy
        self.envs = list(envs)
        self.config = config if config is not None else PPOConfig()
        self.optimizer = Adam(policy.parameters(), learning_rate=self.config.learning_rate)
        self._rng = np.random.default_rng(self.config.seed)
        self.history = TrainingHistory()
        self.total_timesteps = 0

    # -- experience collection ----------------------------------------------------
    def _collect(self, buffer: RolloutBuffer) -> Dict[str, float]:
        observations: List[Observation] = [env.reset() for env in self.envs]
        episode_rewards: List[float] = []
        episode_improvements: List[float] = []
        steps = 0
        env_index = 0
        while steps < self.config.steps_per_update:
            env = self.envs[env_index]
            observation = observations[env_index]
            action, log_prob, value = self.policy.act(observation)
            next_observation, reward, done, info = env.step(action)
            buffer.add(observation, action, log_prob, value, reward, done)
            steps += 1
            if done:
                episode_rewards.append(env.episode_reward)
                episode_improvements.append(float(info.get("improvement", 0.0)))
                observations[env_index] = env.reset()
            else:
                observations[env_index] = next_observation
            env_index = (env_index + 1) % len(self.envs)
        # Bootstrap from the value of the last observation of env 0.
        last_value = self.policy.value(observations[0])
        buffer.compute_advantages(last_value=last_value)
        self.total_timesteps += steps
        return {
            "mean_episode_reward": float(np.mean(episode_rewards)) if episode_rewards else 0.0,
            "mean_episode_improvement": (
                float(np.mean(episode_improvements)) if episode_improvements else 0.0
            ),
        }

    # -- updates ---------------------------------------------------------------------
    def _update(self, buffer: RolloutBuffer) -> Dict[str, float]:
        policy_losses: List[float] = []
        value_losses: List[float] = []
        entropies: List[float] = []
        for _ in range(self.config.update_epochs):
            for batch in buffer.minibatches(self.config.batch_size, self._rng):
                evaluation = self.policy.evaluate_actions(
                    batch["tokens"],
                    batch["padding_masks"],
                    batch["rule_masks"],
                    batch["location_counts"],
                    batch["rule_actions"],
                    batch["location_actions"],
                )
                log_prob = evaluation["log_prob"]
                entropy = evaluation["entropy"].mean()
                values = evaluation["value"]

                advantages = Tensor(batch["advantages"])
                returns = Tensor(batch["returns"])
                old_log_prob = Tensor(batch["log_probs"])

                ratio = (log_prob - old_log_prob).exp()
                clipped = _clip(ratio, 1.0 - self.config.clip_range, 1.0 + self.config.clip_range)
                surrogate = _elementwise_min(ratio * advantages, clipped * advantages)
                policy_loss = -surrogate.mean()

                value_error = values - returns
                value_loss = (value_error * value_error).mean()

                loss = (
                    policy_loss
                    + self.config.value_coefficient * value_loss
                    - self.config.entropy_coefficient * entropy
                )

                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.clip_grad_norm(self.config.max_grad_norm)
                self.optimizer.step()

                policy_losses.append(policy_loss.item())
                value_losses.append(value_loss.item())
                entropies.append(entropy.item())
        return {
            "policy_loss": float(np.mean(policy_losses)) if policy_losses else 0.0,
            "value_loss": float(np.mean(value_losses)) if value_losses else 0.0,
            "entropy": float(np.mean(entropies)) if entropies else 0.0,
        }

    # -- driver ------------------------------------------------------------------------
    def train(
        self,
        total_timesteps: int,
        progress_callback: Optional[Callable[[TrainingHistory], None]] = None,
    ) -> TrainingHistory:
        """Run PPO until ``total_timesteps`` environment steps were collected."""
        start = time.perf_counter()
        while self.total_timesteps < total_timesteps:
            buffer = RolloutBuffer(gamma=self.config.gamma, gae_lambda=self.config.gae_lambda)
            collection_stats = self._collect(buffer)
            update_stats = self._update(buffer)
            self.history.timesteps.append(self.total_timesteps)
            self.history.mean_episode_reward.append(collection_stats["mean_episode_reward"])
            self.history.mean_episode_improvement.append(
                collection_stats["mean_episode_improvement"]
            )
            self.history.policy_loss.append(update_stats["policy_loss"])
            self.history.value_loss.append(update_stats["value_loss"])
            self.history.entropy.append(update_stats["entropy"])
            self.history.wall_clock_s.append(time.perf_counter() - start)
            if progress_callback is not None:
                progress_callback(self.history)
        return self.history


def _clip(tensor: Tensor, low: float, high: float) -> Tensor:
    """Differentiable clip built from ReLU pieces."""
    clipped_low = (tensor - low).relu() + low
    return high - (high - clipped_low).relu()


def _elementwise_min(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable element-wise minimum."""
    return b - (b - a).relu()
