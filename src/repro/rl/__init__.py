"""Reinforcement-learning framework for FHE circuit optimization.

The framework mirrors the paper's design (Sec. 5):

* :mod:`repro.rl.env` -- the MDP: states are IR expressions, actions are
  ``(rewrite rule, location)`` pairs plus ``END``, rewards come from the
  analytical FHE cost function;
* :mod:`repro.rl.reward` -- the step + terminal reward structure and its
  configurable weights;
* :mod:`repro.rl.policy` -- the hierarchical actor-critic (Transformer state
  encoder, rule-selection network, location-selection network, critic);
* :mod:`repro.rl.flat_policy` -- the flat rule×location baseline of the
  action-space ablation;
* :mod:`repro.rl.ppo` -- Proximal Policy Optimization with GAE;
* :mod:`repro.rl.agent` -- the deployable agent: a trained policy plus
  tokenizer exposed through ``optimize(expr)`` so it plugs straight into the
  compiler pipeline;
* :mod:`repro.rl.autoencoder` -- Transformer/GRU autoencoders for the
  encoder-architecture ablation (Fig. 11, Table 7).
"""

from repro.rl.reward import RewardConfig
from repro.rl.env import EnvConfig, FheRewriteEnv, Observation
from repro.rl.policy import HierarchicalActorCritic, PolicyConfig
from repro.rl.flat_policy import FlatActorCritic
from repro.rl.rollout import RolloutBuffer
from repro.rl.ppo import PPOConfig, PPOTrainer, TrainingHistory
from repro.rl.agent import ChehabAgent

__all__ = [
    "RewardConfig",
    "EnvConfig",
    "FheRewriteEnv",
    "Observation",
    "PolicyConfig",
    "HierarchicalActorCritic",
    "FlatActorCritic",
    "RolloutBuffer",
    "PPOConfig",
    "PPOTrainer",
    "TrainingHistory",
    "ChehabAgent",
]
