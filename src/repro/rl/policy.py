"""The hierarchical actor-critic policy (paper Sec. 5.4).

The actor decomposes the action into a rewrite rule and an application
location.  Three networks share the Transformer state embedding:

* the **rule-selection network** (MLP 128-64) produces a distribution over
  the 84 rules plus ``END``, with inapplicable rules masked out;
* the **location-selection network** (MLP 64-64) receives the state
  embedding concatenated with an embedding of the chosen rule and produces a
  distribution over match locations (1st match, 2nd match, ...);
* the **critic** (MLP 256-128-64) estimates the state value.

``act`` samples (or argmaxes) an action; ``evaluate_actions`` recomputes log
probabilities, entropy and values for PPO updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Embedding, MLP, Module
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerEncoder
from repro.rl.env import Observation

__all__ = ["PolicyConfig", "HierarchicalActorCritic", "sample_from_logits"]

_NEG_INF = -1e9


@dataclass
class PolicyConfig:
    """Network sizes; the defaults are the paper's configuration."""

    vocab_size: int = 128
    model_dim: int = 256
    num_layers: int = 4
    num_heads: int = 8
    max_tokens: int = 256
    max_locations: int = 16
    rule_hidden: Tuple[int, ...] = (128, 64)
    location_hidden: Tuple[int, ...] = (64, 64)
    critic_hidden: Tuple[int, ...] = (256, 128, 64)
    rule_embedding_dim: int = 32
    seed: Optional[int] = None

    @classmethod
    def small(cls, vocab_size: int, max_tokens: int = 64, seed: Optional[int] = None) -> "PolicyConfig":
        """A scaled-down configuration for tests and quick experiments."""
        return cls(
            vocab_size=vocab_size,
            model_dim=32,
            num_layers=1,
            num_heads=2,
            max_tokens=max_tokens,
            max_locations=8,
            rule_hidden=(32,),
            location_hidden=(32,),
            critic_hidden=(32,),
            rule_embedding_dim=8,
            seed=seed,
        )


def _masked_log_softmax(logits: Tensor, mask: np.ndarray) -> Tensor:
    additive = np.where(np.asarray(mask, dtype=bool), 0.0, _NEG_INF)
    return (logits + Tensor(additive)).log_softmax(axis=-1)


def sample_from_logits(
    log_probs: np.ndarray, rng: np.random.Generator, deterministic: bool
) -> int:
    """Sample an index from log probabilities (or take the argmax)."""
    if deterministic:
        return int(np.argmax(log_probs))
    probabilities = np.exp(log_probs - log_probs.max())
    probabilities /= probabilities.sum()
    return int(rng.choice(len(probabilities), p=probabilities))


class HierarchicalActorCritic(Module):
    """Transformer encoder + rule head + location head + critic."""

    def __init__(self, action_count: int, config: Optional[PolicyConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else PolicyConfig()
        self.action_count = action_count
        self.rule_count = action_count - 1  # END has no location
        cfg = self.config
        self.encoder = TransformerEncoder(
            vocab_size=cfg.vocab_size,
            model_dim=cfg.model_dim,
            num_layers=cfg.num_layers,
            num_heads=cfg.num_heads,
            max_length=cfg.max_tokens,
            seed=cfg.seed,
        )
        self.rule_head = MLP(cfg.model_dim, list(cfg.rule_hidden), action_count, seed=cfg.seed)
        self.rule_embedding = Embedding(action_count, cfg.rule_embedding_dim, seed=cfg.seed)
        self.location_head = MLP(
            cfg.model_dim + cfg.rule_embedding_dim,
            list(cfg.location_hidden),
            cfg.max_locations,
            seed=None if cfg.seed is None else cfg.seed + 1,
        )
        self.critic = MLP(cfg.model_dim, list(cfg.critic_hidden), 1, seed=None if cfg.seed is None else cfg.seed + 2)
        self._rng = np.random.default_rng(cfg.seed)

    # -- shared encoding -------------------------------------------------------------
    def _encode(self, tokens: np.ndarray, padding_mask: np.ndarray) -> Tensor:
        tokens = np.atleast_2d(tokens)
        padding_mask = np.atleast_2d(padding_mask)
        return self.encoder.encode(tokens, padding_mask)

    def _location_mask(self, location_counts: np.ndarray, rule_indices: np.ndarray) -> np.ndarray:
        """Boolean mask of valid locations for each chosen rule."""
        batch = rule_indices.shape[0]
        mask = np.zeros((batch, self.config.max_locations), dtype=bool)
        for row, rule_index in enumerate(rule_indices):
            if rule_index >= self.rule_count:
                mask[row, 0] = True  # END: a single dummy location
                continue
            count = int(location_counts[row, rule_index])
            mask[row, : max(1, min(count, self.config.max_locations))] = True
        return mask

    # -- acting ---------------------------------------------------------------------------
    def distributions(self, observation: Observation):
        """Masked rule distribution plus a per-rule location distribution.

        Returns ``(rule_log_probs, location_log_probs_fn, value)`` where
        ``rule_log_probs`` is a numpy vector over the action space and
        ``location_log_probs_fn(rule_index)`` returns the numpy vector over
        locations for that rule.  Used both by :meth:`act` and by the
        deployment-time policy-guided rollout of the agent.
        """
        state = self._encode(observation.tokens, observation.padding_mask)
        rule_logits = self.rule_head(state)
        rule_log_probs = _masked_log_softmax(
            rule_logits, observation.rule_mask[None, :]
        ).numpy()[0]
        location_counts = observation.location_counts[None, :]

        def location_log_probs(rule_index: int) -> np.ndarray:
            location_mask = self._location_mask(location_counts, np.array([rule_index]))
            rule_embedded = self.rule_embedding(np.array([rule_index]))
            location_input = Tensor.concatenate([state, rule_embedded], axis=-1)
            location_logits = self.location_head(location_input)
            return _masked_log_softmax(location_logits, location_mask).numpy()[0]

        value = float(self.critic(state).numpy()[0, 0])
        return rule_log_probs, location_log_probs, value

    def act(
        self, observation: Observation, deterministic: bool = False
    ) -> Tuple[Tuple[int, int], float, float]:
        """Choose an action.

        Returns ``((rule_index, location_index), log_prob, value)``.
        """
        rule_log_probs, location_log_probs_fn, value = self.distributions(observation)
        rule_index = sample_from_logits(rule_log_probs, self._rng, deterministic)
        location_log_probs = location_log_probs_fn(rule_index)
        location_index = sample_from_logits(location_log_probs, self._rng, deterministic)
        log_prob = float(
            rule_log_probs[rule_index] + location_log_probs[location_index]
        )
        return (rule_index, location_index), log_prob, value

    def value(self, observation: Observation) -> float:
        """State-value estimate for bootstrapping."""
        state = self._encode(observation.tokens, observation.padding_mask)
        return float(self.critic(state).numpy()[0, 0])

    # -- PPO update path ----------------------------------------------------------------------
    def evaluate_actions(
        self,
        tokens: np.ndarray,
        padding_mask: np.ndarray,
        rule_mask: np.ndarray,
        location_counts: np.ndarray,
        rule_actions: np.ndarray,
        location_actions: np.ndarray,
    ) -> Dict[str, Tensor]:
        """Log-probabilities, entropy and values for a batch of transitions."""
        state = self._encode(tokens, padding_mask)
        batch = state.shape[0]

        rule_logits = self.rule_head(state)
        rule_log_probs = _masked_log_softmax(rule_logits, rule_mask)
        rule_selected = rule_log_probs[np.arange(batch), rule_actions]

        location_mask = self._location_mask(location_counts, rule_actions)
        rule_embedded = self.rule_embedding(rule_actions)
        location_input = Tensor.concatenate([state, rule_embedded], axis=-1)
        location_logits = self.location_head(location_input)
        location_log_probs = _masked_log_softmax(location_logits, location_mask)
        location_selected = location_log_probs[np.arange(batch), location_actions]

        log_prob = rule_selected + location_selected

        rule_probs = rule_log_probs.exp()
        location_probs = location_log_probs.exp()
        entropy = -(rule_probs * rule_log_probs).sum(axis=-1) - (
            location_probs * location_log_probs
        ).sum(axis=-1)

        values = self.critic(state).reshape(batch)
        return {"log_prob": log_prob, "entropy": entropy, "value": values}
