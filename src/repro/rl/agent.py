"""The deployable CHEHAB RL agent.

:class:`ChehabAgent` bundles the tokenizer, rule set and a trained (or
freshly initialised) policy and exposes the ``optimize(expr)`` interface the
compiler pipeline expects, so a trained agent can be dropped into
:class:`repro.compiler.pipeline.CompilerOptions` as the ``optimizer``.

At inference time the agent rolls the policy out deterministically (argmax
over the masked action distributions), applying at most ``max_steps``
rewrites or stopping at the ``END`` action — this is the "few seconds,
deterministic compilation" behaviour highlighted in the paper's FAQ.  A
``guided`` fallback can reject rewrites that increase the analytical cost,
which stabilises agents trained with very small step budgets.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cost import CostModel
from repro.ir.nodes import Expr
from repro.ir.tokenize import ICITokenizer
from repro.nn.serialize import load_module, save_module
from repro.rl.env import EnvConfig, FheRewriteEnv
from repro.rl.policy import HierarchicalActorCritic, PolicyConfig
from repro.rl.ppo import PPOConfig, PPOTrainer, TrainingHistory
from repro.rl.reward import RewardConfig
from repro.trs.registry import RuleSet, default_ruleset
from repro.trs.rewriter import RewriteResult, RewriteStep

__all__ = ["ChehabAgent"]


class ChehabAgent:
    """A trained policy packaged as a compiler optimizer."""

    def __init__(
        self,
        policy: Optional[HierarchicalActorCritic] = None,
        policy_config: Optional[PolicyConfig] = None,
        ruleset: Optional[RuleSet] = None,
        reward_config: Optional[RewardConfig] = None,
        max_steps: int = 75,
        guided: bool = True,
    ) -> None:
        self.ruleset = ruleset if ruleset is not None else default_ruleset()
        self.reward_config = reward_config if reward_config is not None else RewardConfig()
        self.max_steps = max_steps
        self.guided = guided
        self.tokenizer = ICITokenizer(
            max_length=(policy_config.max_tokens if policy_config is not None else 256)
        )
        if policy is not None:
            self.policy = policy
            self.policy_config = policy.config
        else:
            self.policy_config = (
                policy_config
                if policy_config is not None
                else PolicyConfig(vocab_size=self.tokenizer.vocab_size)
            )
            self.policy = HierarchicalActorCritic(
                self.ruleset.action_count, self.policy_config
            )
        self.training_history: Optional[TrainingHistory] = None

    # -- training -------------------------------------------------------------------
    def _make_env(self, expression_source) -> FheRewriteEnv:
        env_config = EnvConfig(
            max_steps=self.max_steps,
            max_locations=self.policy_config.max_locations,
            max_tokens=self.policy_config.max_tokens,
            reward=self.reward_config,
        )
        return FheRewriteEnv(
            expression_source,
            ruleset=self.ruleset,
            tokenizer=self.tokenizer,
            config=env_config,
        )

    def train(
        self,
        expressions: Sequence[Expr],
        total_timesteps: int = 2_000_000,
        num_envs: int = 8,
        ppo_config: Optional[PPOConfig] = None,
        seed: Optional[int] = 0,
    ) -> TrainingHistory:
        """Train the policy with PPO on a dataset of expressions."""
        from repro.rl.env import dataset_source

        envs = [
            self._make_env(dataset_source(expressions, seed=None if seed is None else seed + i))
            for i in range(num_envs)
        ]
        trainer = PPOTrainer(self.policy, envs, ppo_config or PPOConfig(seed=seed))
        self.training_history = trainer.train(total_timesteps)
        return self.training_history

    # -- inference -------------------------------------------------------------------
    def optimize(self, expr: Expr, top_k: int = 4) -> RewriteResult:
        """Optimize ``expr`` by rolling out the policy deterministically.

        In *guided* mode (the default) the agent considers its ``top_k``
        highest-probability rules at each step, applies the best
        cost-reducing one (the analytical cost is the same signal the policy
        was trained on), and stops when none of them improves the circuit.
        With ``guided=False`` the rollout is the pure argmax policy, stopping
        at ``END`` — the behaviour used when reporting pure-policy quality.
        """
        cost_model = self.reward_config.cost_model
        env = self._make_env(lambda: expr)
        observation = env.reset(expr)
        initial_cost = cost_model.cost(expr)
        current = expr
        current_cost = initial_cost
        steps: List[RewriteStep] = []
        for _ in range(self.max_steps):
            rule_log_probs, location_log_probs_fn, _value = self.policy.distributions(
                observation
            )
            if self.guided:
                chosen = self._best_guided_action(
                    current, current_cost, rule_log_probs, location_log_probs_fn, top_k
                )
                if chosen is None:
                    break
                rule_index, location_index, candidate, candidate_cost = chosen
            else:
                rule_index = int(np.argmax(rule_log_probs))
                if rule_index == self.ruleset.end_index:
                    break
                rule = self.ruleset[rule_index]
                locations = rule.find(current)
                if not locations:
                    break
                location_index = min(
                    int(np.argmax(location_log_probs_fn(rule_index))), len(locations) - 1
                )
                candidate = rule.apply_at(current, locations[location_index])
                candidate_cost = cost_model.cost(candidate)
            steps.append(
                RewriteStep(
                    rule_name=self.ruleset[rule_index].name,
                    rule_index=rule_index,
                    location_index=location_index,
                    cost_before=current_cost,
                    cost_after=candidate_cost,
                )
            )
            current = candidate
            current_cost = candidate_cost
            observation, _reward, done, _info = env.step((rule_index, location_index))
            if done:
                break
        return RewriteResult(
            initial=expr,
            optimized=current,
            steps=steps,
            initial_cost=initial_cost,
            final_cost=current_cost,
        )

    def _best_guided_action(
        self,
        current: Expr,
        current_cost: float,
        rule_log_probs: np.ndarray,
        location_log_probs_fn,
        top_k: int,
    ) -> Optional[Tuple[int, int, Expr, float]]:
        """Best cost-reducing candidate among the policy's top-k rules."""
        cost_model = self.reward_config.cost_model
        candidate_rules = np.argsort(rule_log_probs)[::-1][: max(1, top_k)]
        best: Optional[Tuple[int, int, Expr, float]] = None
        for rule_index in candidate_rules:
            rule_index = int(rule_index)
            if rule_index == self.ruleset.end_index:
                continue
            rule = self.ruleset[rule_index]
            locations = rule.find(current)
            if not locations:
                continue
            location_index = min(
                int(np.argmax(location_log_probs_fn(rule_index))), len(locations) - 1
            )
            candidate = rule.apply_at(current, locations[location_index])
            candidate_cost = cost_model.cost(candidate)
            if candidate_cost < current_cost - 1e-9 and (
                best is None or candidate_cost < best[3]
            ):
                best = (rule_index, location_index, candidate, candidate_cost)
        return best

    # -- persistence --------------------------------------------------------------------
    def save(self, directory: Union[str, os.PathLike]) -> None:
        """Save the policy weights and agent metadata to ``directory``."""
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        save_module(self.policy, os.path.join(directory, "policy.npz"))
        metadata = {
            "max_steps": self.max_steps,
            "guided": self.guided,
            "policy_config": {
                "vocab_size": self.policy_config.vocab_size,
                "model_dim": self.policy_config.model_dim,
                "num_layers": self.policy_config.num_layers,
                "num_heads": self.policy_config.num_heads,
                "max_tokens": self.policy_config.max_tokens,
                "max_locations": self.policy_config.max_locations,
                "rule_hidden": list(self.policy_config.rule_hidden),
                "location_hidden": list(self.policy_config.location_hidden),
                "critic_hidden": list(self.policy_config.critic_hidden),
                "rule_embedding_dim": self.policy_config.rule_embedding_dim,
            },
        }
        with open(os.path.join(directory, "agent.json"), "w", encoding="utf-8") as handle:
            json.dump(metadata, handle, indent=2)

    @classmethod
    def load(cls, directory: Union[str, os.PathLike]) -> "ChehabAgent":
        """Load an agent saved by :meth:`save`."""
        directory = os.fspath(directory)
        with open(os.path.join(directory, "agent.json"), "r", encoding="utf-8") as handle:
            metadata = json.load(handle)
        config_data = metadata["policy_config"]
        config = PolicyConfig(
            vocab_size=config_data["vocab_size"],
            model_dim=config_data["model_dim"],
            num_layers=config_data["num_layers"],
            num_heads=config_data["num_heads"],
            max_tokens=config_data["max_tokens"],
            max_locations=config_data["max_locations"],
            rule_hidden=tuple(config_data["rule_hidden"]),
            location_hidden=tuple(config_data["location_hidden"]),
            critic_hidden=tuple(config_data["critic_hidden"]),
            rule_embedding_dim=config_data["rule_embedding_dim"],
        )
        agent = cls(
            policy_config=config,
            max_steps=metadata["max_steps"],
            guided=metadata["guided"],
        )
        load_module(agent.policy, os.path.join(directory, "policy.npz"))
        return agent
