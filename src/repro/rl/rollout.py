"""Rollout storage and Generalized Advantage Estimation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.rl.env import Observation

__all__ = ["RolloutBuffer"]


@dataclass
class RolloutBuffer:
    """Stores one batch of environment transitions and computes GAE targets."""

    gamma: float = 0.99
    gae_lambda: float = 0.95

    tokens: List[np.ndarray] = field(default_factory=list)
    padding_masks: List[np.ndarray] = field(default_factory=list)
    rule_masks: List[np.ndarray] = field(default_factory=list)
    location_counts: List[np.ndarray] = field(default_factory=list)
    rule_actions: List[int] = field(default_factory=list)
    location_actions: List[int] = field(default_factory=list)
    log_probs: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    dones: List[bool] = field(default_factory=list)

    advantages: np.ndarray = field(default_factory=lambda: np.zeros(0))
    returns: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def add(
        self,
        observation: Observation,
        action: Tuple[int, int],
        log_prob: float,
        value: float,
        reward: float,
        done: bool,
    ) -> None:
        self.tokens.append(observation.tokens.copy())
        self.padding_masks.append(observation.padding_mask.copy())
        self.rule_masks.append(observation.rule_mask.copy())
        self.location_counts.append(observation.location_counts.copy())
        self.rule_actions.append(int(action[0]))
        self.location_actions.append(int(action[1]))
        self.log_probs.append(float(log_prob))
        self.values.append(float(value))
        self.rewards.append(float(reward))
        self.dones.append(bool(done))

    def __len__(self) -> int:
        return len(self.rewards)

    def compute_advantages(self, last_value: float = 0.0) -> None:
        """Compute GAE advantages and discounted returns in place."""
        size = len(self)
        advantages = np.zeros(size)
        last_advantage = 0.0
        next_value = last_value
        for index in reversed(range(size)):
            non_terminal = 0.0 if self.dones[index] else 1.0
            delta = (
                self.rewards[index]
                + self.gamma * next_value * non_terminal
                - self.values[index]
            )
            last_advantage = (
                delta + self.gamma * self.gae_lambda * non_terminal * last_advantage
            )
            advantages[index] = last_advantage
            next_value = self.values[index]
        self.advantages = advantages
        self.returns = advantages + np.asarray(self.values)

    def minibatches(
        self, batch_size: int, rng: np.random.Generator
    ) -> Iterator[Dict[str, np.ndarray]]:
        """Yield shuffled minibatches as dictionaries of numpy arrays."""
        size = len(self)
        if size == 0:
            return
        indices = rng.permutation(size)
        advantages = self.advantages
        if advantages.std() > 1e-8:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        for start in range(0, size, batch_size):
            batch = indices[start : start + batch_size]
            yield {
                "tokens": np.stack([self.tokens[i] for i in batch]),
                "padding_masks": np.stack([self.padding_masks[i] for i in batch]),
                "rule_masks": np.stack([self.rule_masks[i] for i in batch]),
                "location_counts": np.stack([self.location_counts[i] for i in batch]),
                "rule_actions": np.asarray([self.rule_actions[i] for i in batch]),
                "location_actions": np.asarray([self.location_actions[i] for i in batch]),
                "log_probs": np.asarray([self.log_probs[i] for i in batch]),
                "advantages": advantages[batch],
                "returns": self.returns[batch],
            }

    def clear(self) -> None:
        for attribute in (
            self.tokens,
            self.padding_masks,
            self.rule_masks,
            self.location_counts,
            self.rule_actions,
            self.location_actions,
            self.log_probs,
            self.values,
            self.rewards,
            self.dones,
        ):
            attribute.clear()
        self.advantages = np.zeros(0)
        self.returns = np.zeros(0)
