"""Flat actor-critic baseline for the action-space ablation (Fig. 13).

Instead of choosing a rule and then a location, the flat policy enumerates
every ``(rule, location)`` pair as a separate action (``rule_count ×
max_locations`` actions, plus ``END``).  The much larger, sparser action
space is what makes the flat agent learn more slowly than the hierarchical
one — exactly the effect the ablation measures.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.layers import MLP, Module
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerEncoder
from repro.rl.env import Observation
from repro.rl.policy import PolicyConfig, _masked_log_softmax, sample_from_logits

__all__ = ["FlatActorCritic"]


class FlatActorCritic(Module):
    """Single-head actor over the flattened rule×location action space."""

    def __init__(self, action_count: int, config: Optional[PolicyConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else PolicyConfig()
        self.rule_count = action_count - 1
        self.flat_action_count = self.rule_count * self.config.max_locations + 1
        cfg = self.config
        self.encoder = TransformerEncoder(
            vocab_size=cfg.vocab_size,
            model_dim=cfg.model_dim,
            num_layers=cfg.num_layers,
            num_heads=cfg.num_heads,
            max_length=cfg.max_tokens,
            seed=cfg.seed,
        )
        self.actor_head = MLP(
            cfg.model_dim, list(cfg.rule_hidden), self.flat_action_count, seed=cfg.seed
        )
        self.critic = MLP(
            cfg.model_dim,
            list(cfg.critic_hidden),
            1,
            seed=None if cfg.seed is None else cfg.seed + 2,
        )
        self._rng = np.random.default_rng(cfg.seed)

    # -- action indexing ---------------------------------------------------------
    @property
    def end_flat_index(self) -> int:
        return self.flat_action_count - 1

    def flatten_action(self, rule_index: int, location_index: int) -> int:
        if rule_index >= self.rule_count:
            return self.end_flat_index
        return rule_index * self.config.max_locations + location_index

    def unflatten_action(self, flat_index: int) -> Tuple[int, int]:
        if flat_index == self.end_flat_index:
            return self.rule_count, 0
        return divmod(flat_index, self.config.max_locations)

    def _flat_mask(self, observation: Observation) -> np.ndarray:
        mask = np.zeros(self.flat_action_count, dtype=bool)
        for rule_index in range(self.rule_count):
            count = int(observation.location_counts[rule_index])
            if count <= 0:
                continue
            start = rule_index * self.config.max_locations
            mask[start : start + min(count, self.config.max_locations)] = True
        mask[self.end_flat_index] = True
        return mask

    # -- acting ---------------------------------------------------------------------
    def act(
        self, observation: Observation, deterministic: bool = False
    ) -> Tuple[Tuple[int, int], float, float]:
        state = self.encoder.encode(
            np.atleast_2d(observation.tokens), np.atleast_2d(observation.padding_mask)
        )
        logits = self.actor_head(state)
        mask = self._flat_mask(observation)
        log_probs = _masked_log_softmax(logits, mask[None, :])
        flat_index = sample_from_logits(log_probs.numpy()[0], self._rng, deterministic)
        value = float(self.critic(state).numpy()[0, 0])
        return self.unflatten_action(flat_index), float(log_probs.numpy()[0, flat_index]), value

    def value(self, observation: Observation) -> float:
        state = self.encoder.encode(
            np.atleast_2d(observation.tokens), np.atleast_2d(observation.padding_mask)
        )
        return float(self.critic(state).numpy()[0, 0])

    # -- PPO update path -------------------------------------------------------------------
    def evaluate_actions(
        self,
        tokens: np.ndarray,
        padding_mask: np.ndarray,
        rule_mask: np.ndarray,
        location_counts: np.ndarray,
        rule_actions: np.ndarray,
        location_actions: np.ndarray,
    ) -> Dict[str, Tensor]:
        batch = tokens.shape[0]
        state = self.encoder.encode(tokens, padding_mask)
        logits = self.actor_head(state)

        flat_mask = np.zeros((batch, self.flat_action_count), dtype=bool)
        for row in range(batch):
            for rule_index in range(self.rule_count):
                count = int(location_counts[row, rule_index])
                if count <= 0:
                    continue
                start = rule_index * self.config.max_locations
                flat_mask[row, start : start + min(count, self.config.max_locations)] = True
            flat_mask[row, self.end_flat_index] = True

        log_probs = _masked_log_softmax(logits, flat_mask)
        flat_actions = np.array(
            [
                self.flatten_action(int(rule), int(loc))
                for rule, loc in zip(rule_actions, location_actions)
            ]
        )
        selected = log_probs[np.arange(batch), flat_actions]
        probs = log_probs.exp()
        entropy = -(probs * log_probs).sum(axis=-1)
        values = self.critic(state).reshape(batch)
        return {"log_prob": selected, "entropy": entropy, "value": values}
