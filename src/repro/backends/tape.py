"""Executable tape representation for the tape-compiled vector VM.

A :class:`CompiledTape` is what :mod:`repro.backends.tapeopt` produces from a
:class:`~repro.compiler.circuit.CircuitProgram`: a short, optimized list of
:class:`TapeOp` superinstructions over a fixed **register arena** (liveness
colored buffer slots plus a read-only constant pool), with every piece of
noise/latency accounting precomputed at compile time.  Executing a tape is
then pure numpy: the slots are checked out of a per-tape pool, every
operation writes through ``out=`` into an existing buffer, and the hot loop
carries no bound arithmetic, no ledger calls and no allocations.

Three pieces live here:

* the tape data model (:class:`TapeOp`, :class:`TapeLoad`,
  :class:`TapeOutput`, :class:`TapeAccounting`, :class:`CompiledTape`);
* **reduction planning** — :meth:`CompiledTape.plan_for` simulates static
  magnitude bounds for a given input-magnitude bucket and interleaves
  congruence-preserving ``reduce`` ops exactly where an int64 overflow could
  occur, cached per bucket (reductions preserve values mod ``t`` and the
  final decode is centred mod ``t``, so reduction *placement* can never
  change the decoded outputs — any conservative schedule is bit-safe);
* the **per-tape specializer** — :meth:`TapePlan.function` emits a
  straight-line Python function with the dispatch unrolled (one generated
  line per tape op, buffers bound to locals), compiled once per
  (tape, reduction plan) and reused across executions.

The accounting figures attached to the tape are replayed from the *original*
instruction sequence through the same
:class:`~repro.backends.base.NoiseLedger`/:class:`~repro.fhe.meter.ExecutionMeter`
machinery the reference backend uses — noise accounting is input
independent, so replaying it once at compile time is float-for-float
identical to metering every execution.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.executor import ExecutionReport, Value
from repro.core.exceptions import CompilationError
from repro.fhe.params import BFVParameters

__all__ = [
    "REDUCE_LIMIT",
    "TapeOp",
    "TapeLoad",
    "TapeOutput",
    "TapeAccounting",
    "TapePlan",
    "TapeProfile",
    "CompiledTape",
    "set_tape_profiling",
    "tape_profiling_enabled",
]

#: Reduce operands once a projected magnitude bound reaches this limit; the
#: next operation is then guaranteed to stay inside signed 64-bit range.
REDUCE_LIMIT = 1 << 62

#: Tape ops whose destination buffer must not alias *any* operand buffer
#: (they write the destination before all operands have been read).
_NO_ALIAS_ALL = frozenset({"rot", "rot_add", "rot_mul", "rot_mul_add"})
#: Fused ops whose destination must not alias the accumulator operand ``c``
#: (the first ufunc overwrites ``dst`` before the second reads ``c``).
_NO_ALIAS_ACC = frozenset({"mul_add", "mul_sub_l", "mul_sub_r", "rot_mul_add"})

#: How many checked-in arenas a tape keeps per batch size.  Two covers the
#: steady state (one server tick in flight plus one warm spare) without
#: letting a long-lived tape pin unbounded memory.
_POOL_DEPTH = 2

#: Opt-in per-superinstruction profiling.  Off by default; the only cost on
#: the disabled path is one module-global boolean check per *batch* (not per
#: op), so steady-state throughput is unaffected.
_PROFILING = False


def set_tape_profiling(enabled: bool) -> bool:
    """Toggle per-superinstruction tape profiling; returns the old value.

    When enabled, :meth:`CompiledTape.execute_batch` routes through the
    dispatch interpreter with a ``perf_counter_ns`` sample around every tape
    op, accumulating counts and cumulative nanoseconds per opcode into the
    tape's :class:`TapeProfile`.  Outputs stay bit-identical (the profiled
    path runs the exact same in-place numpy ops in the exact same order as
    opt level 1, whose parity with the specialized path is pinned by tests)
    and accounting stays float-identical (it is replayed at compile time,
    independent of the execution path).
    """
    global _PROFILING
    previous = _PROFILING
    _PROFILING = bool(enabled)
    return previous


def tape_profiling_enabled() -> bool:
    """Whether per-superinstruction profiling is currently on."""
    return _PROFILING


class TapeProfile:
    """Aggregated per-opcode timings for one tape (thread-safe)."""

    __slots__ = ("_lock", "op_counts", "op_ns", "batches", "rows")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.op_counts: Dict[str, int] = {}
        self.op_ns: Dict[str, int] = {}
        self.batches = 0
        self.rows = 0

    def observe(self, counts: Mapping[str, int], elapsed_ns: Mapping[str, int], rows: int) -> None:
        """Fold one profiled batch into the aggregate."""
        with self._lock:
            self.batches += 1
            self.rows += rows
            for kind, count in counts.items():
                self.op_counts[kind] = self.op_counts.get(kind, 0) + count
            for kind, ns in elapsed_ns.items():
                self.op_ns[kind] = self.op_ns.get(kind, 0) + ns

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: per-opcode count/total_ns/mean_ns + totals."""
        with self._lock:
            ops = {
                kind: {
                    "count": count,
                    "total_ns": self.op_ns.get(kind, 0),
                    "mean_ns": self.op_ns.get(kind, 0) / count if count else 0.0,
                }
                for kind, count in sorted(self.op_counts.items())
            }
            return {
                "batches": self.batches,
                "rows": self.rows,
                "total_ns": sum(self.op_ns.values()),
                "ops": ops,
            }


@dataclass(frozen=True)
class TapeOp:
    """One optimized tape instruction over arena buffer indices.

    ``kind`` semantics (``R[i]`` is buffer ``i``; rotations are left
    rotations by ``step`` slots, matching ``np.roll(x, -step, axis=1)``):

    ========== =====================================
    kind        effect
    ========== =====================================
    add         ``R[dst] = R[a] + R[b]``
    sub         ``R[dst] = R[a] - R[b]``
    mul         ``R[dst] = R[a] * R[b]``
    neg         ``R[dst] = -R[a]``
    rot         ``R[dst] = rot(R[a], step)``
    rot_add     ``R[dst] = rot(R[a], step) + R[b]``
    rot_mul     ``R[dst] = rot(R[a], step) * R[b]``
    rot_mul_add ``R[dst] = rot(R[a], step) * R[b] + R[c]``
    mul_add     ``R[dst] = R[a] * R[b] + R[c]``
    mul_sub_l   ``R[dst] = R[a] * R[b] - R[c]``
    mul_sub_r   ``R[dst] = R[c] - R[a] * R[b]``
    reduce      ``R[dst] = centred(R[dst] mod t)`` (in place)
    ========== =====================================
    """

    kind: str
    dst: int
    a: int = -1
    b: int = -1
    c: int = -1
    step: int = 0


@dataclass(frozen=True)
class TapeLoad:
    """One deduplicated encrypted input: fill ``buffer`` from a template.

    ``template`` holds the centred constant slots (zero elsewhere) and is
    broadcast into the whole ``(B, n)`` buffer; ``var_columns`` are the
    ``(column, input_name)`` pairs overwritten per batch row afterwards.
    """

    buffer: int
    template: np.ndarray
    var_columns: Tuple[Tuple[int, str], ...]
    const_bound: int


@dataclass(frozen=True)
class TapeOutput:
    """Where one declared program output lives after optimization."""

    name: str
    buffer: int
    length: int
    is_ciphertext: bool
    budget: float = 0.0


@dataclass(frozen=True)
class TapeAccounting:
    """Input-independent accounting, replayed once at tape-compile time."""

    latency_ms: float
    operation_counts: Dict[str, int]
    encrypted_inputs: int
    remaining_noise_budget: float
    consumed_noise_budget: float
    noise_budget_exhausted: bool


class TapePlan:
    """One executable schedule: tape ops with reduce ops interleaved.

    Plans are produced (and cached) per input-magnitude bucket by
    :meth:`CompiledTape.plan_for`; the optional specialized function is
    generated lazily by :meth:`function` and cached on the plan.
    """

    __slots__ = ("tape", "bucket", "ops", "_fn", "_source", "_lock")

    def __init__(self, tape: "CompiledTape", bucket: int, ops: List[TapeOp]) -> None:
        self.tape = tape
        self.bucket = bucket
        self.ops = ops
        self._fn: Optional[Callable] = None
        self._source: Optional[str] = None
        self._lock = threading.Lock()

    @property
    def reductions(self) -> int:
        return sum(1 for op in self.ops if op.kind == "reduce")

    def function(self) -> Callable:
        """The specialized straight-line function for this plan (cached)."""
        fn = self._fn
        if fn is None:
            with self._lock:
                fn = self._fn
                if fn is None:
                    fn, source = _specialize(self)
                    self._source = source
                    self._fn = fn
        return fn

    def source(self) -> str:
        """Generated Python source of the specialized function."""
        self.function()
        return self._source or ""


class CompiledTape:
    """An optimized, directly executable form of one circuit."""

    def __init__(
        self,
        *,
        params: BFVParameters,
        consts: List[np.ndarray],
        const_bounds: List[int],
        slot_count: int,
        loads: List[TapeLoad],
        ops: List[TapeOp],
        outputs: List[TapeOutput],
        accounting: TapeAccounting,
        stats: Dict[str, object],
    ) -> None:
        self.params = params
        self.t = params.plain_modulus
        self.n = params.slot_count
        self.half = self.t // 2
        for const in consts:
            const.flags.writeable = False  # the pool is shared across runs
        self.consts = consts
        self.const_bounds = const_bounds
        self.slot_count = slot_count
        self.loads = loads
        self.ops = ops
        self.outputs = outputs
        self.accounting = accounting
        self.stats = stats
        self._plans: Dict[int, TapePlan] = {}
        self._pool: Dict[int, List[List[np.ndarray]]] = {}
        self._lock = threading.Lock()
        #: Lazily created on the first profiled batch; ``None`` until then.
        self.profile: Optional[TapeProfile] = None

    # -- reduction planning --------------------------------------------------
    def plan_for(self, input_bound: int) -> TapePlan:
        """The reduction plan for inputs of magnitude ``<= input_bound``.

        Bounds are bucketed to the next power of two (clamped to the centred
        input range ``t // 2``) so one tape accumulates a handful of plans,
        not one per distinct batch.
        """
        bound = max(1, int(input_bound))
        cap = max(1, self.half)
        bucket = min(1 << (bound - 1).bit_length(), cap)
        plan = self._plans.get(bucket)
        if plan is None:
            with self._lock:
                plan = self._plans.get(bucket)
                if plan is None:
                    plan = TapePlan(self, bucket, self._schedule_reductions(bucket))
                    self._plans[bucket] = plan
        return plan

    def _schedule_reductions(self, bucket: int) -> List[TapeOp]:
        """Simulate magnitude bounds and interleave ``reduce`` ops.

        The simulation runs over arena buffers in execution order, so
        in-place writes and buffer reuse are modelled exactly; every bound is
        an upper bound of the live values, which makes any schedule that
        keeps the bounds below :data:`REDUCE_LIMIT` overflow-safe.  Constant
        buffers are never reduced (they are shared and already centred).
        """
        n_consts = len(self.consts)
        bounds = [0] * (n_consts + self.slot_count)
        for index, const_bound in enumerate(self.const_bounds):
            bounds[index] = const_bound
        for load in self.loads:
            bounds[load.buffer] = max(
                load.const_bound, bucket if load.var_columns else 0
            )
        reduced = self.half  # |centred residue| <= t // 2 after a reduce
        scheduled: List[TapeOp] = []

        def reduce_buffer(buffer: int) -> None:
            scheduled.append(TapeOp("reduce", dst=buffer))
            bounds[buffer] = reduced

        def reducible(buffer: int) -> bool:
            return buffer >= n_consts and bounds[buffer] > reduced

        def settle_product(x: int, y: int) -> int:
            if bounds[x] * bounds[y] >= REDUCE_LIMIT:
                larger, smaller = (x, y) if bounds[x] >= bounds[y] else (y, x)
                if reducible(larger):
                    reduce_buffer(larger)
                if bounds[larger] * bounds[smaller] >= REDUCE_LIMIT and reducible(
                    smaller
                ):
                    reduce_buffer(smaller)
            return bounds[x] * bounds[y]

        for op in self.ops:
            kind = op.kind
            if kind in ("add", "sub", "rot_add"):
                if bounds[op.a] + bounds[op.b] >= REDUCE_LIMIT:
                    for buffer in (op.a, op.b):
                        if reducible(buffer):
                            reduce_buffer(buffer)
                result = bounds[op.a] + bounds[op.b]
            elif kind in ("mul", "rot_mul"):
                result = settle_product(op.a, op.b)
            elif kind in ("mul_add", "mul_sub_l", "mul_sub_r", "rot_mul_add"):
                product = settle_product(op.a, op.b)
                if product + bounds[op.c] >= REDUCE_LIMIT:
                    if reducible(op.c):
                        reduce_buffer(op.c)
                    if product + bounds[op.c] >= REDUCE_LIMIT:
                        for buffer in (op.a, op.b):
                            if reducible(buffer):
                                reduce_buffer(buffer)
                        product = bounds[op.a] * bounds[op.b]
                result = product + bounds[op.c]
            else:  # neg, rot: magnitude-preserving
                result = bounds[op.a]
            scheduled.append(op)
            bounds[op.dst] = result
        return scheduled

    # -- arena pool ----------------------------------------------------------
    def _checkout(self, batch: int) -> List[np.ndarray]:
        with self._lock:
            pool = self._pool.get(batch)
            if pool:
                return pool.pop()
        return [
            np.empty((batch, self.n), dtype=np.int64) for _ in range(self.slot_count)
        ]

    def _checkin(self, batch: int, slots: List[np.ndarray]) -> None:
        with self._lock:
            pool = self._pool.setdefault(batch, [])
            if len(pool) < _POOL_DEPTH:
                pool.append(slots)

    def pooled_arenas(self) -> int:
        """How many arenas are currently parked in the pool (all batch sizes)."""
        with self._lock:
            return sum(len(arenas) for arenas in self._pool.values())

    # -- profiling -----------------------------------------------------------
    def _profile(self) -> TapeProfile:
        profile = self.profile
        if profile is None:
            with self._lock:
                profile = self.profile
                if profile is None:
                    profile = self.profile = TapeProfile()
        return profile

    def profile_snapshot(self) -> Optional[Dict[str, object]]:
        """The aggregated opcode profile, or ``None`` if never profiled."""
        profile = self.profile
        return profile.as_dict() if profile is not None else None

    # -- execution -----------------------------------------------------------
    def execute_batch(
        self,
        inputs_list: Sequence[Mapping[str, Value]],
        *,
        specialize: bool = True,
        backend_name: str = "vector-vm",
    ) -> List[ExecutionReport]:
        """Run the tape for a whole batch and assemble one report per row."""
        batch = len(inputs_list)
        if batch == 0:
            return []
        t, half = self.t, self.half

        # Marshal the variable inputs once per distinct name and track the
        # largest centred magnitude, which selects the reduction plan.
        name_values: Dict[str, np.ndarray] = {}
        input_bound = 0
        for load in self.loads:
            for _, name in load.var_columns:
                if name in name_values:
                    continue
                values = np.empty(batch, dtype=np.int64)
                for row, inputs in enumerate(inputs_list):
                    value = inputs.get(name)
                    if value is None:
                        raise CompilationError(
                            f"missing value for program input {name!r}"
                        )
                    if isinstance(value, (list, tuple)):
                        raise CompilationError(
                            f"input {name!r} is packed slot-wise and must be a scalar"
                        )
                    residue = int(value) % t
                    values[row] = residue - t if residue > half else residue
                name_values[name] = values
                if batch:
                    input_bound = max(input_bound, int(np.max(np.abs(values))))

        plan = self.plan_for(input_bound)
        slots = self._checkout(batch)
        try:
            buffers = self.consts + slots
            for load in self.loads:
                target = buffers[load.buffer]
                np.copyto(target, load.template)
                for column, name in load.var_columns:
                    target[:, column] = name_values[name]
            if _PROFILING:
                _interpret_profiled(
                    plan.ops, buffers, t, half, self.n, self._profile(), batch
                )
            elif specialize:
                plan.function()(buffers)
            else:
                _interpret(plan.ops, buffers, t, half, self.n)
            reports = self._build_reports(buffers, batch, backend_name)
        finally:
            self._checkin(batch, slots)
        return reports

    def _build_reports(
        self, buffers: List[np.ndarray], batch: int, backend_name: str
    ) -> List[ExecutionReport]:
        accounting = self.accounting
        t, half = self.t, self.half
        reports = [
            ExecutionReport(
                latency_ms=accounting.latency_ms,
                operation_counts=dict(accounting.operation_counts),
                encrypted_inputs=accounting.encrypted_inputs,
                consumed_noise_budget=accounting.consumed_noise_budget,
                remaining_noise_budget=accounting.remaining_noise_budget,
                noise_budget_exhausted=accounting.noise_budget_exhausted,
                backend=backend_name,
                batch_size=batch,
            )
            for _ in range(batch)
        ]
        for output in self.outputs:
            array = buffers[output.buffer]
            if not output.is_ciphertext:
                raw = array[: output.length] % t
                decoded = [int(v - t) if v > half else int(v) for v in raw]
                for report in reports:
                    report.outputs[output.name] = list(decoded)
                continue
            raw = array[:, : output.length] % t
            centred = np.where(raw > half, raw - t, raw)
            for row, report in enumerate(reports):
                report.outputs[output.name] = [int(v) for v in centred[row]]
        return reports

    # -- inspection ----------------------------------------------------------
    def render(self, *, input_bound: int = 7) -> str:
        """Human-readable tape listing (the ``repro tape`` CLI output)."""
        n_consts = len(self.consts)

        def buf(index: int) -> str:
            if index < 0:
                return "-"
            if index < n_consts:
                return f"c{index}"
            return f"r{index - n_consts}"

        lines: List[str] = []
        stats = self.stats
        lines.append(
            "tape: {instr} instructions -> {after} tape entries "
            "({ops} ops, {loads} loads, {consts} consts), "
            "{fused} fused, arena {slots} x ({n},) rows".format(
                instr=stats.get("instructions"),
                after=stats.get("tape_entries"),
                ops=stats.get("tape_ops"),
                loads=stats.get("loads"),
                consts=stats.get("consts"),
                fused=stats.get("fused_total"),
                slots=self.slot_count,
                n=self.n,
            )
        )
        eliminated = stats.get("eliminated", {})
        if isinstance(eliminated, dict) and any(eliminated.values()):
            parts = ", ".join(f"{k}={v}" for k, v in eliminated.items() if v)
            lines.append(f"eliminated: {parts}")
        for index, bound in enumerate(self.const_bounds):
            preview = np.array2string(
                self.consts[index][:6], separator=", ", threshold=6
            )
            lines.append(f"  c{index} = const {preview} ... |v|<={bound}")
        for load in self.loads:
            names = ", ".join(
                f"{name}@{column}" for column, name in load.var_columns[:4]
            )
            extra = "" if len(load.var_columns) <= 4 else ", ..."
            lines.append(
                f"  {buf(load.buffer)} = load_input [{names}{extra}] "
                f"(|const|<={load.const_bound})"
            )
        plan = self.plan_for(input_bound)
        for op in plan.ops:
            if op.kind == "reduce":
                lines.append(f"  reduce {buf(op.dst)}")
            elif op.kind == "neg":
                lines.append(f"  {buf(op.dst)} = neg {buf(op.a)}")
            elif op.kind == "rot":
                lines.append(f"  {buf(op.dst)} = rot {buf(op.a)} << {op.step}")
            elif op.kind in ("add", "sub", "mul"):
                lines.append(
                    f"  {buf(op.dst)} = {op.kind} {buf(op.a)}, {buf(op.b)}"
                )
            elif op.kind in ("rot_add", "rot_mul"):
                lines.append(
                    f"  {buf(op.dst)} = {op.kind} ({buf(op.a)} << {op.step}), "
                    f"{buf(op.b)}"
                )
            elif op.kind == "rot_mul_add":
                lines.append(
                    f"  {buf(op.dst)} = rot_mul_add ({buf(op.a)} << {op.step}) * "
                    f"{buf(op.b)} + {buf(op.c)}"
                )
            else:  # mul_add / mul_sub_l / mul_sub_r
                sign = {"mul_add": "+", "mul_sub_l": "-", "mul_sub_r": "-r"}[op.kind]
                lines.append(
                    f"  {buf(op.dst)} = {buf(op.a)} * {buf(op.b)} {sign} {buf(op.c)}"
                )
        for output in self.outputs:
            kind = "ct" if output.is_ciphertext else "plain"
            lines.append(
                f"  output {output.name!r} <- {buf(output.buffer)}"
                f"[:{output.length}] ({kind})"
            )
        lines.append(
            f"plan[bucket={plan.bucket}]: {plan.reductions} scheduled reductions"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the fallback interpreter (opt level 1: optimized tape, dispatch loop)
# ---------------------------------------------------------------------------
def _rotate_into(dst: np.ndarray, src: np.ndarray, step: int, n: int) -> None:
    split = n - step
    dst[:, :split] = src[:, step:]
    dst[:, split:] = src[:, :step]


def _interpret(
    ops: Sequence[TapeOp], buffers: List[np.ndarray], t: int, half: int, n: int
) -> None:
    np_add, np_sub, np_mul = np.add, np.subtract, np.multiply
    for op in ops:
        kind = op.kind
        dst = buffers[op.dst]
        if kind == "add":
            np_add(buffers[op.a], buffers[op.b], out=dst)
        elif kind == "sub":
            np_sub(buffers[op.a], buffers[op.b], out=dst)
        elif kind == "mul":
            np_mul(buffers[op.a], buffers[op.b], out=dst)
        elif kind == "mul_add":
            np_mul(buffers[op.a], buffers[op.b], out=dst)
            np_add(dst, buffers[op.c], out=dst)
        elif kind == "mul_sub_l":
            np_mul(buffers[op.a], buffers[op.b], out=dst)
            np_sub(dst, buffers[op.c], out=dst)
        elif kind == "mul_sub_r":
            np_mul(buffers[op.a], buffers[op.b], out=dst)
            np_sub(buffers[op.c], dst, out=dst)
        elif kind == "rot":
            _rotate_into(dst, buffers[op.a], op.step, n)
        elif kind == "rot_add":
            _rotate_into(dst, buffers[op.a], op.step, n)
            np_add(dst, buffers[op.b], out=dst)
        elif kind == "rot_mul":
            _rotate_into(dst, buffers[op.a], op.step, n)
            np_mul(dst, buffers[op.b], out=dst)
        elif kind == "rot_mul_add":
            _rotate_into(dst, buffers[op.a], op.step, n)
            np_mul(dst, buffers[op.b], out=dst)
            np_add(dst, buffers[op.c], out=dst)
        elif kind == "neg":
            np.negative(buffers[op.a], out=dst)
        elif kind == "reduce":
            np.remainder(dst, t, out=dst)
            np_sub(dst, t, out=dst, where=dst > half)
        else:  # pragma: no cover - defensive
            raise CompilationError(f"unknown tape op kind {kind!r}")


def _interpret_profiled(
    ops: Sequence[TapeOp],
    buffers: List[np.ndarray],
    t: int,
    half: int,
    n: int,
    profile: TapeProfile,
    rows: int,
) -> None:
    """Like :func:`_interpret`, but samples ``perf_counter_ns`` per op.

    Delegates each op to :func:`_interpret` one at a time, so the executed
    numpy operations (and hence the outputs) are bit-identical to opt level 1
    by construction; only the clock samples and the per-opcode accumulation
    are extra.
    """
    counts: Dict[str, int] = {}
    elapsed: Dict[str, int] = {}
    clock = time.perf_counter_ns
    for op in ops:
        start = clock()
        _interpret((op,), buffers, t, half, n)
        duration = clock() - start
        kind = op.kind
        counts[kind] = counts.get(kind, 0) + 1
        elapsed[kind] = elapsed.get(kind, 0) + duration
    profile.observe(counts, elapsed, rows)


# ---------------------------------------------------------------------------
# the per-tape specializer (opt level 2: generated straight-line function)
# ---------------------------------------------------------------------------
def _specialize(plan: TapePlan) -> Tuple[Callable, str]:
    """Generate one straight-line Python function for ``plan``.

    Every buffer is bound to a local once, every tape op becomes one or a
    few generated lines calling in-place numpy ufuncs, and rotation slices
    are baked in as constants — no dispatch, no indexing, no allocation in
    the generated body.
    """
    tape = plan.tape
    n, t, half = tape.n, tape.t, tape.half
    used = set()
    for op in plan.ops:
        for index in (op.dst, op.a, op.b, op.c):
            if index >= 0:
                used.add(index)
    for output in tape.outputs:
        used.add(output.buffer)
    lines = ["def _tape_fn(buffers):"]
    for index in sorted(used):
        lines.append(f"    b{index} = buffers[{index}]")
    emitted = False
    for op in plan.ops:
        kind = op.kind
        dst, a, b, c = f"b{op.dst}", f"b{op.a}", f"b{op.b}", f"b{op.c}"
        if kind == "add":
            lines.append(f"    _add({a}, {b}, out={dst})")
        elif kind == "sub":
            lines.append(f"    _sub({a}, {b}, out={dst})")
        elif kind == "mul":
            lines.append(f"    _mul({a}, {b}, out={dst})")
        elif kind == "neg":
            lines.append(f"    _neg({a}, out={dst})")
        elif kind == "mul_add":
            lines.append(f"    _mul({a}, {b}, out={dst})")
            lines.append(f"    _add({dst}, {c}, out={dst})")
        elif kind == "mul_sub_l":
            lines.append(f"    _mul({a}, {b}, out={dst})")
            lines.append(f"    _sub({dst}, {c}, out={dst})")
        elif kind == "mul_sub_r":
            lines.append(f"    _mul({a}, {b}, out={dst})")
            lines.append(f"    _sub({c}, {dst}, out={dst})")
        elif kind in ("rot", "rot_add", "rot_mul", "rot_mul_add"):
            split = n - op.step
            lines.append(f"    {dst}[:, :{split}] = {a}[:, {op.step}:]")
            lines.append(f"    {dst}[:, {split}:] = {a}[:, :{op.step}]")
            if kind == "rot_add":
                lines.append(f"    _add({dst}, {b}, out={dst})")
            elif kind == "rot_mul":
                lines.append(f"    _mul({dst}, {b}, out={dst})")
            elif kind == "rot_mul_add":
                lines.append(f"    _mul({dst}, {b}, out={dst})")
                lines.append(f"    _add({dst}, {c}, out={dst})")
        elif kind == "reduce":
            lines.append(f"    _mod({dst}, {t}, out={dst})")
            lines.append(f"    _sub({dst}, {t}, out={dst}, where={dst} > {half})")
        else:  # pragma: no cover - defensive
            raise CompilationError(f"unknown tape op kind {kind!r}")
        emitted = True
    if not emitted and not used:
        lines.append("    pass")
    source = "\n".join(lines)
    namespace = {
        "_add": np.add,
        "_sub": np.subtract,
        "_mul": np.multiply,
        "_neg": np.negative,
        "_mod": np.remainder,
    }
    exec(compile(source, f"<tape-plan:{plan.bucket}>", "exec"), namespace)
    return namespace["_tape_fn"], source
