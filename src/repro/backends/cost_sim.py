"""The cost-only simulator: noise/latency accounting without any crypto.

Walks the instruction tape running *only* the noise-budget and latency
models — no slot data is ever materialised, so a "run" costs a few
microseconds regardless of the ring dimension.  The report carries the same
latency, operation counts and noise figures as a reference execution (same
:class:`~repro.backends.base.NoiseLedger` formulas, same order) but an empty
``outputs`` dict, which is exactly what design-space exploration and RL
reward evaluation need: the question is "what would this circuit cost?",
not "what does it compute?".

Inputs are optional and ignored — the accounting of a BFV circuit is
input-independent.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.backends.base import BaseBackend, NoiseLedger
from repro.backends.registry import register_backend
from repro.compiler.circuit import CircuitProgram, Opcode
from repro.compiler.executor import ExecutionReport, Value
from repro.core.exceptions import CompilationError
from repro.fhe.meter import ExecutionMeter
from repro.fhe.params import BFVParameters

__all__ = ["CostSimBackend"]


@register_backend(
    "cost-sim",
    description="no-crypto simulator running only the noise/latency models",
    use_when="design-space exploration and RL reward evaluation (no outputs)",
    produces_outputs=False,
)
class CostSimBackend(BaseBackend):
    """Account for a circuit without executing it."""

    name = "cost-sim"
    produces_outputs = False

    def execute(
        self,
        program: CircuitProgram,
        inputs: Optional[Mapping[str, Value]] = None,
        params: Optional[BFVParameters] = None,
        context: Optional[object] = None,
    ) -> ExecutionReport:
        if params is None and context is not None:
            params = context.params
        if params is None:
            params = BFVParameters.default()
        meter = ExecutionMeter(params=params)
        ledger = NoiseLedger(meter)
        encrypted_inputs = 0

        for instruction in program.instructions:
            opcode = instruction.opcode
            dst = instruction.result
            if opcode is Opcode.LOAD_INPUT:
                ledger.load_input(dst)
                encrypted_inputs += 1
            elif opcode is Opcode.LOAD_PLAIN:
                pass
            elif opcode is Opcode.ADD:
                ledger.add(dst, *instruction.operands, "add")
            elif opcode is Opcode.SUB:
                ledger.add(dst, *instruction.operands, "sub")
            elif opcode is Opcode.MUL:
                ledger.multiply_relinearize(dst, *instruction.operands)
            elif opcode is Opcode.ADD_PLAIN:
                ledger.add_plain(dst, instruction.operands[0], "add")
            elif opcode is Opcode.SUB_PLAIN:
                ledger.add_plain(dst, instruction.operands[0], "sub")
            elif opcode is Opcode.MUL_PLAIN:
                ledger.multiply_plain(dst, instruction.operands[0])
            elif opcode is Opcode.NEGATE:
                ledger.negate(dst, instruction.operands[0])
            elif opcode is Opcode.ROTATE:
                ledger.rotate(dst, instruction.operands[0], instruction.step)
            elif opcode is Opcode.OUTPUT:
                ledger.alias(dst, instruction.operands[0])
            else:  # pragma: no cover - defensive
                raise CompilationError(f"unknown opcode {opcode}")

        initial_budget = params.initial_noise_budget
        minimum_budget = initial_budget
        exhausted = False
        for register, _, _ in program.outputs:
            if not ledger.is_ciphertext(register):
                continue
            budget = ledger.output_budget(register)
            minimum_budget = min(minimum_budget, budget)
            if budget <= 0.0:
                exhausted = True

        remaining = max(0.0, minimum_budget)
        return ExecutionReport(
            latency_ms=meter.total_latency_ms,
            operation_counts=meter.operation_counts(),
            consumed_noise_budget=initial_budget - remaining,
            remaining_noise_budget=remaining,
            noise_budget_exhausted=exhausted,
            encrypted_inputs=encrypted_inputs,
            backend=self.name,
        )

    def execute_many(
        self,
        program: CircuitProgram,
        inputs_list: Sequence[Mapping[str, Value]],
        params: Optional[BFVParameters] = None,
    ) -> List[ExecutionReport]:
        if not inputs_list:
            return []
        # Accounting is input-independent: run the models once and replicate.
        template = self.execute(program, inputs_list[0], params=params)
        batch = len(inputs_list)
        reports = []
        for _ in range(batch):
            report = ExecutionReport(
                latency_ms=template.latency_ms,
                operation_counts=dict(template.operation_counts),
                consumed_noise_budget=template.consumed_noise_budget,
                remaining_noise_budget=template.remaining_noise_budget,
                noise_budget_exhausted=template.noise_budget_exhausted,
                encrypted_inputs=template.encrypted_inputs,
                backend=self.name,
                batch_size=batch,
            )
            reports.append(report)
        return reports
