"""Backend-compile stage: turn a CircuitProgram into an optimized tape.

This is the vector VM's optimizer.  :func:`compile_tape` runs a pipeline of
peephole passes over the SSA instruction list and emits a
:class:`~repro.backends.tape.CompiledTape`:

1. **Copy propagation** — ``ROTATE`` with an effective step of zero and
   ``OUTPUT`` markers are pure aliases; they are resolved away so aliases
   never materialise (the latent in-place aliasing hazard of the old
   interpreter cannot exist by construction).
2. **Constant/load hoisting + dedup** — identical ``LOAD_PLAIN`` constants
   collapse into one read-only constant-pool entry, identical ``LOAD_INPUT``
   layouts into one load, and identical pure subexpressions are value
   numbered (CSE).  Dead values left behind are dropped.
3. **Superinstruction fusion** — the dominant reduction chains fuse:
   ``mul``/``mul_plain`` feeding a single-use ``add``/``sub`` becomes
   ``mul_add``/``mul_sub_*``, and a single-use ``rotate`` feeding ``mul``,
   ``add`` or a fused ``mul_add`` folds into ``rot_mul``/``rot_add``/
   ``rot_mul_add``.
4. **Register-arena coloring** — SSA values are liveness-colored onto
   reusable buffer slots.  Elementwise ops may write in place over an
   operand slot (numpy ufuncs are exact-aliasing safe); rotations and the
   multi-step fused ops get a destination slot disjoint from their operands.
5. **Accounting replay** — the *original* instruction sequence is replayed
   once through :class:`~repro.backends.base.NoiseLedger` and
   :class:`~repro.fhe.meter.ExecutionMeter`; the resulting latency,
   operation counts and noise budgets are input independent and therefore
   float-for-float identical to metering each execution.

Reduction *placement* is not decided here — it depends on input magnitudes,
so :meth:`CompiledTape.plan_for` schedules it per bucketed input bound at
execution time (cached per tape).

The module also owns the process-wide compiled-tape memo
(:func:`get_compiled_tape`): tapes are keyed by circuit fingerprint and BFV
parameters, so the JobServer's coalesced batches — and any number of backend
instances — reuse compiled tapes across ticks.  :func:`tape_cache_stats`
exposes hit/miss/compile counters for smoke tests and server telemetry.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backends.base import NoiseLedger, program_fingerprint
from repro.backends.tape import (
    CompiledTape,
    TapeAccounting,
    TapeLoad,
    TapeOp,
    TapeOutput,
)
from repro.compiler.circuit import CircuitProgram, Opcode
from repro.core.exceptions import CompilationError
from repro.fhe.meter import ExecutionMeter
from repro.fhe.params import BFVParameters

__all__ = [
    "compile_tape",
    "get_compiled_tape",
    "tape_cache_stats",
    "reset_tape_cache",
    "scheduling_cost_ms",
    "TapeVerificationError",
]


class TapeVerificationError(CompilationError):
    """The static tape verifier reported ERROR findings on a fresh compile.

    Carries the full :class:`~repro.analysis.AnalysisReport` so callers
    (CLI, server telemetry) can surface every finding, not just the first.
    """

    def __init__(self, name: str, report) -> None:
        self.report = report
        preview = "; ".join(f.render() for f in report.findings[:5])
        super().__init__(f"tape verification failed for {name!r}: {preview}")


@dataclass
class _Def:
    """One SSA value during optimization (mutable across passes)."""

    kind: str
    x: Optional[Tuple[str, int]] = None
    y: Optional[Tuple[str, int]] = None
    acc: Optional[Tuple[str, int]] = None
    step: int = 0
    load: int = -1


_BINARY_KINDS = {
    Opcode.ADD: "add",
    Opcode.SUB: "sub",
    Opcode.MUL: "mul",
    Opcode.ADD_PLAIN: "add",
    Opcode.SUB_PLAIN: "sub",
    Opcode.MUL_PLAIN: "mul",
}


# ---------------------------------------------------------------------------
# accounting replay (input independent, once per tape)
# ---------------------------------------------------------------------------
def _replay_accounting(
    program: CircuitProgram, params: BFVParameters
) -> Tuple[TapeAccounting, Dict[int, Tuple[bool, float]]]:
    """Replay the original tape through the ledger/meter formulas.

    Mirrors the legacy interpreter's accounting loop statement for statement
    (same operations, same order), so every float is identical to a metered
    execution.  Returns the aggregate accounting plus per-output-register
    ``(is_ciphertext, clamped_budget)`` pairs.
    """
    meter = ExecutionMeter(params=params)
    ledger = NoiseLedger(meter)
    encrypted_inputs = 0
    for instruction in program.instructions:
        opcode = instruction.opcode
        dst = instruction.result
        if opcode is Opcode.LOAD_INPUT:
            ledger.load_input(dst)
            encrypted_inputs += 1
        elif opcode is Opcode.LOAD_PLAIN:
            pass
        elif opcode is Opcode.ADD:
            ledger.add(dst, *instruction.operands, "add")
        elif opcode is Opcode.SUB:
            ledger.add(dst, *instruction.operands, "sub")
        elif opcode is Opcode.MUL:
            ledger.multiply_relinearize(dst, *instruction.operands)
        elif opcode is Opcode.ADD_PLAIN:
            ledger.add_plain(dst, instruction.operands[0], "add")
        elif opcode is Opcode.SUB_PLAIN:
            ledger.add_plain(dst, instruction.operands[0], "sub")
        elif opcode is Opcode.MUL_PLAIN:
            ledger.multiply_plain(dst, instruction.operands[0])
        elif opcode is Opcode.NEGATE:
            ledger.negate(dst, instruction.operands[0])
        elif opcode is Opcode.ROTATE:
            ledger.rotate(dst, instruction.operands[0], instruction.step)
        elif opcode is Opcode.OUTPUT:
            ledger.alias(dst, instruction.operands[0])
        else:  # pragma: no cover - defensive
            raise CompilationError(f"unknown opcode {opcode}")

    initial_budget = params.initial_noise_budget
    minimum_budget = initial_budget
    exhausted = False
    per_output: Dict[int, Tuple[bool, float]] = {}
    for register, _, _ in program.outputs:
        if not ledger.is_ciphertext(register):
            per_output[register] = (False, 0.0)
            continue
        budget = ledger.output_budget(register)
        minimum_budget = min(minimum_budget, budget)
        if budget <= 0.0:
            exhausted = True
        per_output[register] = (True, budget)
    remaining = max(0.0, minimum_budget)
    consumed = initial_budget - remaining
    accounting = TapeAccounting(
        latency_ms=meter.total_latency_ms,
        operation_counts=meter.operation_counts(),
        encrypted_inputs=encrypted_inputs,
        remaining_noise_budget=remaining,
        consumed_noise_budget=consumed,
        noise_budget_exhausted=exhausted,
    )
    return accounting, per_output


# ---------------------------------------------------------------------------
# the optimization pipeline
# ---------------------------------------------------------------------------
def compile_tape(program: CircuitProgram, params: BFVParameters) -> CompiledTape:
    """Compile ``program`` into an optimized executable tape."""
    t = params.plain_modulus
    n = params.slot_count
    half = t // 2

    def centred(value: int) -> int:
        residue = int(value) % t
        return residue - t if residue > half else residue

    consts: List[np.ndarray] = []
    const_bounds: List[int] = []
    const_index: Dict[object, int] = {}
    raw_loads: List[Tuple[np.ndarray, Tuple[Tuple[int, str], ...], int]] = []
    values: List[_Def] = []
    ref_of: Dict[int, Tuple[str, int]] = {}
    numbering: Dict[object, int] = {}
    eliminated = Counter()

    def new_value(defn: _Def, key: object = None) -> Tuple[str, int]:
        vid = len(values)
        values.append(defn)
        if key is not None:
            numbering[key] = vid
        return ("v", vid)

    # -- pass 1+2: copy propagation, const/load dedup, value numbering ------
    for instruction in program.instructions:
        opcode = instruction.opcode
        dst = instruction.result
        if opcode is Opcode.LOAD_INPUT:
            key = ("load", instruction.layout)
            hit = numbering.get(key)
            if hit is not None:
                ref_of[dst] = ("v", hit)
                eliminated["dedup_loads"] += 1
                continue
            template = np.zeros(n, dtype=np.int64)
            var_columns: List[Tuple[int, str]] = []
            const_bound = 0
            for column, slot in enumerate(instruction.layout):
                if slot.constant is not None:
                    value = centred(slot.constant)
                    template[column] = value
                    const_bound = max(const_bound, abs(value))
                else:
                    var_columns.append((column, slot.name))
            raw_loads.append((template, tuple(var_columns), const_bound))
            ref_of[dst] = new_value(_Def("load", load=len(raw_loads) - 1), key)
        elif opcode is Opcode.LOAD_PLAIN:
            key = ("plain", instruction.name == "broadcast", instruction.values)
            index = const_index.get(key)
            if index is None:
                if instruction.name == "broadcast":
                    value = centred(instruction.values[0])
                    plain = np.full(n, value, dtype=np.int64)
                    bound = abs(value)
                else:
                    plain = np.zeros(n, dtype=np.int64)
                    centred_values = [centred(v) for v in instruction.values]
                    plain[: len(centred_values)] = centred_values
                    bound = max((abs(v) for v in centred_values), default=0)
                index = len(consts)
                consts.append(plain)
                const_bounds.append(bound)
                const_index[key] = index
            else:
                eliminated["dedup_consts"] += 1
            ref_of[dst] = ("c", index)
        elif opcode is Opcode.ROTATE:
            source = ref_of[instruction.operands[0]]
            step = instruction.step % n
            if step == 0:
                ref_of[dst] = source
                eliminated["aliases"] += 1
                continue
            key = ("rot", source, step)
            hit = numbering.get(key)
            if hit is not None:
                ref_of[dst] = ("v", hit)
                eliminated["cse"] += 1
            else:
                ref_of[dst] = new_value(_Def("rot", x=source, step=step), key)
        elif opcode is Opcode.OUTPUT:
            ref_of[dst] = ref_of[instruction.operands[0]]
            eliminated["aliases"] += 1
        elif opcode is Opcode.NEGATE:
            source = ref_of[instruction.operands[0]]
            key = ("neg", source)
            hit = numbering.get(key)
            if hit is not None:
                ref_of[dst] = ("v", hit)
                eliminated["cse"] += 1
            else:
                ref_of[dst] = new_value(_Def("neg", x=source), key)
        else:
            kind = _BINARY_KINDS.get(opcode)
            if kind is None:  # pragma: no cover - defensive
                raise CompilationError(f"unknown opcode {opcode}")
            lhs, rhs = instruction.operands
            x, y = ref_of[lhs], ref_of[rhs]
            if kind in ("add", "mul") and y < x:
                key = (kind, y, x)  # commutative: canonical operand order
            else:
                key = (kind, x, y)
            hit = numbering.get(key)
            if hit is not None:
                ref_of[dst] = ("v", hit)
                eliminated["cse"] += 1
            else:
                ref_of[dst] = new_value(_Def(kind, x=x, y=y), key)

    output_refs = [
        (name, ref_of[register], length, register)
        for register, name, length in program.outputs
    ]

    # -- dead-value elimination ---------------------------------------------
    live = [False] * len(values)
    stack = [ref[1] for _, ref, _, _ in output_refs if ref[0] == "v"]
    while stack:
        vid = stack.pop()
        if live[vid]:
            continue
        live[vid] = True
        defn = values[vid]
        for ref in (defn.x, defn.y, defn.acc):
            if ref is not None and ref[0] == "v" and not live[ref[1]]:
                stack.append(ref[1])
    eliminated["dead"] = sum(1 for flag in live if not flag)
    order = [vid for vid in range(len(values)) if live[vid]]

    # -- fusion passes -------------------------------------------------------
    output_vids = {ref[1] for _, ref, _, _ in output_refs if ref[0] == "v"}
    fused = Counter()

    def use_counts() -> Counter:
        counts: Counter = Counter()
        for vid in order:
            defn = values[vid]
            for ref in (defn.x, defn.y, defn.acc):
                if ref is not None and ref[0] == "v":
                    counts[ref[1]] += 1
        for _, ref, _, _ in output_refs:
            if ref[0] == "v":
                counts[ref[1]] += 1
        return counts

    # Pass A: mul feeding a single-use add/sub -> mul_add / mul_sub_*.
    counts = use_counts()
    consumed: set = set()
    for vid in order:
        defn = values[vid]
        if defn.kind not in ("add", "sub"):
            continue
        for attr, other_attr in (("x", "y"), ("y", "x")):
            ref = getattr(defn, attr)
            if ref is None or ref[0] != "v":
                continue
            pvid = ref[1]
            producer = values[pvid]
            if (
                producer.kind == "mul"
                and counts[pvid] == 1
                and pvid not in output_vids
                and pvid not in consumed
            ):
                other = getattr(defn, other_attr)
                if defn.kind == "add":
                    defn.kind = "mul_add"
                else:
                    defn.kind = "mul_sub_l" if attr == "x" else "mul_sub_r"
                defn.x, defn.y, defn.acc = producer.x, producer.y, other
                consumed.add(pvid)
                fused[defn.kind] += 1
                break
    order = [vid for vid in order if vid not in consumed]

    # Pass B: single-use rotate folding into its consumer.
    counts = use_counts()
    consumed = set()
    for vid in order:
        defn = values[vid]
        if defn.kind in ("mul", "add"):
            for attr, other_attr in (("x", "y"), ("y", "x")):
                ref = getattr(defn, attr)
                if ref is None or ref[0] != "v":
                    continue
                pvid = ref[1]
                producer = values[pvid]
                if (
                    producer.kind == "rot"
                    and counts[pvid] == 1
                    and pvid not in output_vids
                    and pvid not in consumed
                ):
                    other = getattr(defn, other_attr)
                    defn.kind = "rot_mul" if defn.kind == "mul" else "rot_add"
                    defn.x, defn.y, defn.step = producer.x, other, producer.step
                    consumed.add(pvid)
                    fused[defn.kind] += 1
                    break
        elif defn.kind == "mul_add":
            for attr, other_attr in (("x", "y"), ("y", "x")):
                ref = getattr(defn, attr)
                if ref is None or ref[0] != "v":
                    continue
                pvid = ref[1]
                producer = values[pvid]
                if (
                    producer.kind == "rot"
                    and counts[pvid] == 1
                    and pvid not in output_vids
                    and pvid not in consumed
                ):
                    other = getattr(defn, other_attr)
                    defn.kind = "rot_mul_add"
                    defn.x, defn.y, defn.step = producer.x, other, producer.step
                    consumed.add(pvid)
                    fused["rot_mul_add"] += 1
                    break
    order = [vid for vid in order if vid not in consumed]

    # -- register-arena coloring --------------------------------------------
    load_vids = [vid for vid in order if values[vid].kind == "load"]
    op_vids = [vid for vid in order if values[vid].kind != "load"]

    last_use: Dict[int, int] = {}
    for position, vid in enumerate(op_vids):
        defn = values[vid]
        for ref in (defn.x, defn.y, defn.acc):
            if ref is not None and ref[0] == "v":
                last_use[ref[1]] = position
    forever = len(op_vids) + 1
    for _, ref, _, _ in output_refs:
        if ref[0] == "v":
            last_use[ref[1]] = forever

    slot_of: Dict[int, int] = {}
    free_slots: List[int] = []
    slot_count = 0

    def allocate(forbidden: set) -> int:
        nonlocal slot_count
        for index in range(len(free_slots) - 1, -1, -1):
            if free_slots[index] not in forbidden:
                return free_slots.pop(index)
        slot = slot_count
        slot_count += 1
        return slot

    for vid in load_vids:
        slot_of[vid] = allocate(set())

    _NO_ALIAS_ALL = {"rot", "rot_add", "rot_mul", "rot_mul_add"}
    _NO_ALIAS_ACC = {"mul_add", "mul_sub_l", "mul_sub_r"}
    for position, vid in enumerate(op_vids):
        defn = values[vid]
        operand_vids = {
            ref[1]
            for ref in (defn.x, defn.y, defn.acc)
            if ref is not None and ref[0] == "v"
        }
        for operand in operand_vids:
            if last_use.get(operand) == position:
                free_slots.append(slot_of[operand])
        if defn.kind in _NO_ALIAS_ALL:
            forbidden = {slot_of[operand] for operand in operand_vids}
        elif defn.kind in _NO_ALIAS_ACC and defn.acc is not None and defn.acc[0] == "v":
            forbidden = {slot_of[defn.acc[1]]}
        else:
            forbidden = set()
        slot_of[vid] = allocate(forbidden)

    # -- compact the constant pool to what the final tape references --------
    used_consts = sorted(
        {
            ref[1]
            for vid in order
            for ref in (values[vid].x, values[vid].y, values[vid].acc)
            if ref is not None and ref[0] == "c"
        }
        | {ref[1] for _, ref, _, _ in output_refs if ref[0] == "c"}
    )
    const_remap = {old: new for new, old in enumerate(used_consts)}
    final_consts = [consts[old] for old in used_consts]
    final_const_bounds = [const_bounds[old] for old in used_consts]
    n_consts = len(final_consts)

    def buffer_of(ref: Tuple[str, int]) -> int:
        if ref[0] == "c":
            return const_remap[ref[1]]
        return n_consts + slot_of[ref[1]]

    tape_loads = [
        TapeLoad(
            buffer=n_consts + slot_of[vid],
            template=raw_loads[values[vid].load][0],
            var_columns=raw_loads[values[vid].load][1],
            const_bound=raw_loads[values[vid].load][2],
        )
        for vid in load_vids
    ]

    ops: List[TapeOp] = []
    for vid in op_vids:
        defn = values[vid]
        dst = n_consts + slot_of[vid]
        if defn.kind in ("neg", "rot"):
            ops.append(TapeOp(defn.kind, dst, a=buffer_of(defn.x), step=defn.step))
        elif defn.kind in ("add", "sub", "mul", "rot_add", "rot_mul"):
            ops.append(
                TapeOp(
                    defn.kind,
                    dst,
                    a=buffer_of(defn.x),
                    b=buffer_of(defn.y),
                    step=defn.step,
                )
            )
        else:  # mul_add / mul_sub_l / mul_sub_r / rot_mul_add
            ops.append(
                TapeOp(
                    defn.kind,
                    dst,
                    a=buffer_of(defn.x),
                    b=buffer_of(defn.y),
                    c=buffer_of(defn.acc),
                    step=defn.step,
                )
            )

    accounting, per_output = _replay_accounting(program, params)
    outputs = [
        TapeOutput(
            name=name,
            buffer=buffer_of(ref),
            length=length,
            is_ciphertext=per_output[register][0],
            budget=per_output[register][1],
        )
        for name, ref, length, register in output_refs
    ]

    compute_before = sum(
        1 for instruction in program.instructions if instruction.is_compute()
    )
    stats: Dict[str, object] = {
        "instructions": len(program.instructions),
        "compute_ops": compute_before,
        "tape_ops": len(ops),
        "tape_entries": len(ops) + len(tape_loads),
        "loads": len(tape_loads),
        "consts": n_consts,
        "fused": dict(fused),
        "fused_total": sum(fused.values()),
        "eliminated": {key: eliminated[key] for key in sorted(eliminated)},
        "arena_slots": slot_count,
    }
    return CompiledTape(
        params=params,
        consts=final_consts,
        const_bounds=final_const_bounds,
        slot_count=slot_count,
        loads=tape_loads,
        ops=ops,
        outputs=outputs,
        accounting=accounting,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# the process-wide compiled-tape memo
# ---------------------------------------------------------------------------
_CACHE_CAPACITY = 64
_cache: "OrderedDict[Tuple[str, BFVParameters], CompiledTape]" = OrderedDict()
_cache_lock = threading.Lock()
_counters = {"hits": 0, "misses": 0, "compiles": 0, "verified": 0, "findings": 0}


def get_compiled_tape(
    program: CircuitProgram, params: BFVParameters, *, verify: bool = False
) -> CompiledTape:
    """The compiled tape for ``(program, params)``, memoized process-wide.

    Keyed by circuit content fingerprint (name independent) plus the frozen
    BFV parameters — the same identity the service's measured-time table and
    the server's coalescer use, so coalesced batches hit the memo across
    ticks and across backend instances.

    ``verify=True`` runs the static tape verifier
    (:func:`repro.analysis.tape_check.verify_tape`) on every *fresh*
    compile — memo hits were verified when first built — raising
    :class:`TapeVerificationError` on any ERROR finding and folding the
    verified/finding counts into the memo counters (the server's telemetry
    sync turns those into ``analysis_findings``).
    """
    key = (program_fingerprint(program), params)
    with _cache_lock:
        tape = _cache.get(key)
        if tape is not None:
            _cache.move_to_end(key)
            _counters["hits"] += 1
            return tape
        _counters["misses"] += 1
    tape = compile_tape(program, params)
    if verify:
        from repro.analysis.tape_check import verify_tape

        report = verify_tape(program, tape)
        with _cache_lock:
            _counters["verified"] += 1
            _counters["findings"] += len(report.findings)
        if not report.ok:
            raise TapeVerificationError(program.name, report)
    with _cache_lock:
        _counters["compiles"] += 1
        _cache[key] = tape
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_CAPACITY:
            _cache.popitem(last=False)
    return tape


def tape_cache_stats() -> Dict[str, int]:
    """Snapshot of the tape-memo counters (hits/misses/compiles/size)."""
    with _cache_lock:
        snapshot = dict(_counters)
        snapshot["size"] = len(_cache)
        return snapshot


def reset_tape_cache() -> None:
    """Clear the tape memo and its counters (tests and benchmarks)."""
    with _cache_lock:
        _cache.clear()
        for key in _counters:
            _counters[key] = 0


def scheduling_cost_ms(
    program: CircuitProgram, params: BFVParameters, latency_model
) -> float:
    """Analytical latency refined by the compiled tape's fused op count.

    The raw model prices the original instruction list; after fusion the
    tape executes fewer memory passes, so scheduling weights scale by the
    executed/original compute-op ratio.  Used by
    :meth:`ExecutionService.static_cost_ms` when the backend exposes it.
    """
    model_ms = program.estimated_latency_ms(latency_model)
    tape = get_compiled_tape(program, params)
    before = int(tape.stats["compute_ops"])  # type: ignore[arg-type]
    if before <= 0:
        return model_ms
    return model_ms * (int(tape.stats["tape_ops"]) / before)  # type: ignore[arg-type]
