"""The reference backend: the SEAL-style evaluator interpreter.

Runs every instruction through a fresh
:class:`~repro.fhe.evaluator.Evaluator` (its own
:class:`~repro.fhe.meter.ExecutionMeter`, so accounting is per-execution),
encrypting program inputs with the client-side packing layouts recorded by
lowering and decrypting the declared outputs.  This is the bit-compatibility
baseline the vector VM and cost simulator are tested against.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Union

from repro.backends.base import BaseBackend
from repro.backends.registry import register_backend
from repro.compiler.circuit import CircuitProgram, Instruction, Opcode
from repro.compiler.executor import ExecutionReport, Value
from repro.core.exceptions import CompilationError
from repro.fhe.ciphertext import Ciphertext, Plaintext
from repro.fhe.evaluator import Evaluator, FHEContext
from repro.fhe.meter import ExecutionMeter
from repro.fhe.params import BFVParameters

__all__ = ["ReferenceBackend"]


def _slot_value(slot, inputs: Mapping[str, Value]) -> int:
    if slot.constant is not None:
        return int(slot.constant)
    value = inputs.get(slot.name)
    if value is None:
        raise CompilationError(f"missing value for program input {slot.name!r}")
    if isinstance(value, (list, tuple)):
        raise CompilationError(
            f"input {slot.name!r} is packed slot-wise and must be a scalar"
        )
    return int(value)


def _build_plaintext(instruction: Instruction, context: FHEContext) -> Plaintext:
    if instruction.name == "broadcast":
        return context.encoder.encode_scalar(instruction.values[0])
    return context.encoder.encode(list(instruction.values))


@register_backend(
    "reference",
    description="SEAL-style Evaluator interpreter (one input set at a time)",
    use_when="bit-compatibility baseline; anything touching FHEContext/keys",
)
class ReferenceBackend(BaseBackend):
    """Interpret the circuit on the simulated BFV evaluator."""

    name = "reference"
    produces_outputs = True

    def execute(
        self,
        program: CircuitProgram,
        inputs: Mapping[str, Value],
        params: Optional[BFVParameters] = None,
        context: Optional[FHEContext] = None,
    ) -> ExecutionReport:
        if context is None:
            # Generate exactly the Galois keys the circuit needs.
            steps = sorted(set(program.rotation_steps))
            context = FHEContext(params=params, galois_steps=steps or None)
        meter = ExecutionMeter.for_context(context)
        # Honour the context's strict-noise contract (fail fast on budget
        # exhaustion) while metering per-execution.
        evaluator = Evaluator(
            context, strict_noise=context.evaluator.strict_noise, meter=meter
        )

        registers: Dict[int, Union[Ciphertext, Plaintext]] = {}
        encrypted_inputs = 0

        for instruction in program.instructions:
            opcode = instruction.opcode
            if opcode is Opcode.LOAD_INPUT:
                slot_values = [_slot_value(slot, inputs) for slot in instruction.layout]
                plaintext = context.encoder.encode(slot_values)
                registers[instruction.result] = context.encryptor.encrypt(plaintext)
                encrypted_inputs += 1
            elif opcode is Opcode.LOAD_PLAIN:
                registers[instruction.result] = _build_plaintext(instruction, context)
            elif opcode is Opcode.ADD:
                lhs, rhs = (registers[op] for op in instruction.operands)
                registers[instruction.result] = evaluator.add(lhs, rhs)
            elif opcode is Opcode.SUB:
                lhs, rhs = (registers[op] for op in instruction.operands)
                registers[instruction.result] = evaluator.sub(lhs, rhs)
            elif opcode is Opcode.MUL:
                lhs, rhs = (registers[op] for op in instruction.operands)
                result = evaluator.multiply(lhs, rhs)
                registers[instruction.result] = evaluator.relinearize(result)
            elif opcode is Opcode.ADD_PLAIN:
                lhs = registers[instruction.operands[0]]
                plain = registers[instruction.operands[1]]
                registers[instruction.result] = evaluator.add_plain(lhs, plain)
            elif opcode is Opcode.SUB_PLAIN:
                lhs = registers[instruction.operands[0]]
                plain = registers[instruction.operands[1]]
                registers[instruction.result] = evaluator.sub_plain(lhs, plain)
            elif opcode is Opcode.MUL_PLAIN:
                lhs = registers[instruction.operands[0]]
                plain = registers[instruction.operands[1]]
                registers[instruction.result] = evaluator.multiply_plain(lhs, plain)
            elif opcode is Opcode.NEGATE:
                registers[instruction.result] = evaluator.negate(
                    registers[instruction.operands[0]]
                )
            elif opcode is Opcode.ROTATE:
                registers[instruction.result] = evaluator.rotate(
                    registers[instruction.operands[0]], instruction.step
                )
            elif opcode is Opcode.OUTPUT:
                registers[instruction.result] = registers[instruction.operands[0]]
            else:  # pragma: no cover - defensive
                raise CompilationError(f"unknown opcode {opcode}")

        report = ExecutionReport(
            latency_ms=meter.total_latency_ms,
            operation_counts=meter.operation_counts(),
            encrypted_inputs=encrypted_inputs,
            backend=self.name,
        )

        initial_budget = context.params.initial_noise_budget
        minimum_budget = initial_budget
        half = context.params.plain_modulus // 2
        for register, name, length in program.outputs:
            value = registers[register]
            if isinstance(value, Plaintext):
                decoded = context.encoder.decode(value, length)
                report.outputs[name] = decoded
                continue
            budget = context.decryptor.invariant_noise_budget(value)
            minimum_budget = min(minimum_budget, budget)
            if budget <= 0.0:
                report.noise_budget_exhausted = True
            raw = value.slots[:length]
            decoded = [
                int(v - context.params.plain_modulus) if v > half else int(v) for v in raw
            ]
            report.outputs[name] = decoded

        report.remaining_noise_budget = max(0.0, minimum_budget)
        report.consumed_noise_budget = initial_budget - report.remaining_noise_budget
        return report
