"""Pluggable execution backends for lowered ciphertext circuits.

The execution counterpart of the compiler registry: circuits produced by any
compiler run on a named :class:`~repro.backends.base.ExecutionBackend`,

* ``reference`` — the SEAL-style :class:`~repro.fhe.evaluator.Evaluator`
  interpreter (bit-compatibility baseline);
* ``vector-vm`` — a tape-compiled register VM: circuits are backend-compiled
  (:mod:`repro.backends.tapeopt`) into fused, alias-free superinstruction
  tapes over a liveness-colored register arena, then executed for a whole
  batch of input sets as stacked numpy arrays in one in-place sweep;
* ``vector-vm-interp`` — the same VM with tape compilation disabled (the
  legacy per-instruction interpreter), for ablations and benchmarks;
* ``cost-sim`` — a no-crypto simulator running only the noise/latency
  models for design-space exploration and RL reward evaluation.

Backends register through the same decorator/spec idiom as
``@register_compiler`` (:mod:`repro.backends.registry`), share per-execution
accounting through :class:`~repro.fhe.meter.ExecutionMeter` and
:class:`~repro.backends.base.NoiseLedger`, and are addressed by name from
``repro.execute(..., backend="vector-vm")``, the ``--backend`` CLI flag and
the :class:`~repro.service.execution.ExecutionService`.
"""

from repro.backends.base import (
    BaseBackend,
    ExecutionBackend,
    NoiseLedger,
    backend_produces_outputs,
    program_fingerprint,
)
from repro.backends.registry import (
    DEFAULT_BACKEND,
    BackendInfo,
    BackendSpec,
    available_backends,
    backend_info,
    build_backend,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backends.tape import CompiledTape, TapeOp, TapePlan
from repro.backends.tapeopt import (
    compile_tape,
    get_compiled_tape,
    reset_tape_cache,
    tape_cache_stats,
)

__all__ = [
    "ExecutionBackend",
    "BaseBackend",
    "NoiseLedger",
    "backend_produces_outputs",
    "program_fingerprint",
    "BackendInfo",
    "BackendSpec",
    "register_backend",
    "available_backends",
    "backend_info",
    "build_backend",
    "get_backend",
    "resolve_backend",
    "default_backend_name",
    "DEFAULT_BACKEND",
    "CompiledTape",
    "TapeOp",
    "TapePlan",
    "compile_tape",
    "get_compiled_tape",
    "tape_cache_stats",
    "reset_tape_cache",
]
