"""The batched vector VM: one pass over a flat instruction tape serves B users.

The circuit's SSA instruction list *is* already a linear tape over dense
register ids, so the VM skips ciphertext objects entirely and maps each
register to a ``(B, n)`` int64 array — one row per input set.  A single
sweep over the tape then executes the whole batch: every homomorphic
operation becomes one vectorized numpy operation on the stacked rows, which
amortises the per-instruction interpreter overhead (method dispatch,
ciphertext allocation, logging) across all B users instead of paying it B
times.

Two properties keep the VM bit-compatible with the reference backend:

* **Congruence-preserving lazy reduction** — slot values are kept as signed
  int64 *centred* residues (a mask slot holding ``t - 1`` is stored as
  ``-1``) and only reduced modulo ``t`` when a tracked magnitude bound
  approaches the int64 range, whereas the reference evaluator reduces after
  every operation.  Centred storage makes the bounds track the actual data
  magnitudes — for the benchmark suites (small integer inputs, 0/1 masks)
  whole circuits execute without a single mid-tape reduction, which matters
  because an int64 ``%`` costs an order of magnitude more than an add.  All
  intermediate values stay congruent mod ``t``, so the final centred decode
  is bit-identical.
* **Shared accounting** — noise budgets are tracked per register through
  the same :class:`~repro.backends.base.NoiseLedger` formulas the evaluator
  uses, in the same operation order, and latency/operation counts go
  through the same :class:`~repro.fhe.meter.ExecutionMeter`; the figures
  are therefore float-for-float identical to a reference run.

Simulated latency models the *circuit*, so every report in a batch carries
the same ``latency_ms`` as a single reference execution; the VM's win is
wall-clock throughput, measured by ``scripts/bench_backends.py``.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.backends.base import BaseBackend, NoiseLedger
from repro.backends.registry import register_backend
from repro.compiler.circuit import CircuitProgram, Opcode
from repro.compiler.executor import ExecutionReport, Value
from repro.core.exceptions import CompilationError
from repro.fhe.meter import ExecutionMeter
from repro.fhe.params import BFVParameters

__all__ = ["VectorVMBackend"]

#: Reduce operands once a projected magnitude bound reaches this limit; the
#: next operation is then guaranteed to stay inside signed 64-bit range.
_REDUCE_LIMIT = 1 << 62


@register_backend(
    "vector-vm",
    description="linearized register VM executing B input sets as stacked numpy rows",
    use_when="batched throughput: many users/trials of one circuit per tape pass",
)
class VectorVMBackend(BaseBackend):
    """Execute a circuit for a whole batch of input sets in one tape sweep."""

    name = "vector-vm"
    produces_outputs = True

    def execute(
        self,
        program: CircuitProgram,
        inputs: Mapping[str, Value],
        params: Optional[BFVParameters] = None,
        context: Optional[object] = None,
    ) -> ExecutionReport:
        if params is None and context is not None:
            params = context.params
        report = self.execute_many(program, [inputs], params=params)[0]
        return report

    def execute_many(
        self,
        program: CircuitProgram,
        inputs_list: Sequence[Mapping[str, Value]],
        params: Optional[BFVParameters] = None,
    ) -> List[ExecutionReport]:
        if not inputs_list:
            return []
        if params is None:
            params = BFVParameters.default()
        t = params.plain_modulus
        n = params.slot_count
        half = t // 2
        batch = len(inputs_list)
        meter = ExecutionMeter(params=params)
        ledger = NoiseLedger(meter)
        reduced_bound = half + 1  # centred residues lie in [-(t//2), t//2]

        count = len(program.instructions)
        registers: List[Optional[np.ndarray]] = [None] * count
        bounds: List[int] = [0] * count
        encrypted_inputs = 0

        # Liveness: drop each register's array after its last use so the
        # working set stays cache-sized (holding every SSA register alive
        # costs ~100 us/op in page faults at realistic batch dimensions).
        last_use = [0] * count
        for instruction in program.instructions:
            for operand in instruction.operands:
                last_use[operand] = instruction.result
        for register, _, _ in program.outputs:
            last_use[register] = count  # outputs live until decode

        def centred(value: int) -> int:
            residue = int(value) % t
            return residue - t if residue > half else residue

        def reduce_register(index: int) -> None:
            residues = registers[index] % t
            np.subtract(residues, t, out=residues, where=residues > half)
            registers[index] = residues
            bounds[index] = reduced_bound

        for instruction in program.instructions:
            opcode = instruction.opcode
            dst = instruction.result
            if opcode is Opcode.LOAD_INPUT:
                array = np.zeros((batch, n), dtype=np.int64)
                bound = 0
                for column, slot in enumerate(instruction.layout):
                    if slot.constant is not None:
                        value = centred(slot.constant)
                        array[:, column] = value
                        bound = max(bound, abs(value))
                    else:
                        name = slot.name
                        values = []
                        for inputs in inputs_list:
                            value = inputs.get(name)
                            if value is None:
                                raise CompilationError(
                                    f"missing value for program input {name!r}"
                                )
                            if isinstance(value, (list, tuple)):
                                raise CompilationError(
                                    f"input {name!r} is packed slot-wise and must be a scalar"
                                )
                            values.append(centred(value))
                        array[:, column] = values
                        bound = max(bound, max(abs(v) for v in values))
                registers[dst] = array
                bounds[dst] = bound
                ledger.load_input(dst)
                encrypted_inputs += 1
            elif opcode is Opcode.LOAD_PLAIN:
                if instruction.name == "broadcast":
                    value = centred(instruction.values[0])
                    plain = np.full(n, value, dtype=np.int64)
                    bound = abs(value)
                else:
                    plain = np.zeros(n, dtype=np.int64)
                    values = [centred(value) for value in instruction.values]
                    plain[: len(values)] = values
                    bound = max((abs(v) for v in values), default=0)
                registers[dst] = plain
                bounds[dst] = bound
            elif opcode is Opcode.ADD or opcode is Opcode.SUB:
                lhs, rhs = instruction.operands
                if bounds[lhs] + bounds[rhs] >= _REDUCE_LIMIT:
                    reduce_register(lhs)
                    reduce_register(rhs)
                if opcode is Opcode.ADD:
                    registers[dst] = registers[lhs] + registers[rhs]
                    ledger.add(dst, lhs, rhs, "add")
                else:
                    registers[dst] = registers[lhs] - registers[rhs]
                    ledger.add(dst, lhs, rhs, "sub")
                bounds[dst] = bounds[lhs] + bounds[rhs]
            elif opcode is Opcode.MUL:
                lhs, rhs = instruction.operands
                if bounds[lhs] * bounds[rhs] >= _REDUCE_LIMIT:
                    # Reducing the larger operand is usually enough.
                    larger, smaller = (
                        (lhs, rhs) if bounds[lhs] >= bounds[rhs] else (rhs, lhs)
                    )
                    reduce_register(larger)
                    if bounds[larger] * bounds[smaller] >= _REDUCE_LIMIT:
                        reduce_register(smaller)
                registers[dst] = registers[lhs] * registers[rhs]
                bounds[dst] = bounds[lhs] * bounds[rhs]
                ledger.multiply_relinearize(dst, lhs, rhs)
            elif opcode is Opcode.ADD_PLAIN or opcode is Opcode.SUB_PLAIN:
                lhs, plain = instruction.operands
                if bounds[lhs] + bounds[plain] >= _REDUCE_LIMIT:
                    reduce_register(lhs)
                if opcode is Opcode.ADD_PLAIN:
                    registers[dst] = registers[lhs] + registers[plain]
                    ledger.add_plain(dst, lhs, "add")
                else:
                    registers[dst] = registers[lhs] - registers[plain]
                    ledger.add_plain(dst, lhs, "sub")
                bounds[dst] = bounds[lhs] + bounds[plain]
            elif opcode is Opcode.MUL_PLAIN:
                lhs, plain = instruction.operands
                if bounds[lhs] * bounds[plain] >= _REDUCE_LIMIT:
                    reduce_register(lhs)
                registers[dst] = registers[lhs] * registers[plain]
                bounds[dst] = bounds[lhs] * bounds[plain]
                ledger.multiply_plain(dst, lhs)
            elif opcode is Opcode.NEGATE:
                operand = instruction.operands[0]
                registers[dst] = -registers[operand]
                bounds[dst] = bounds[operand]
                ledger.negate(dst, operand)
            elif opcode is Opcode.ROTATE:
                operand = instruction.operands[0]
                step = instruction.step
                if step == 0:
                    registers[dst] = registers[operand]
                else:
                    registers[dst] = np.roll(registers[operand], -step, axis=1)
                bounds[dst] = bounds[operand]
                ledger.rotate(dst, operand, step)
            elif opcode is Opcode.OUTPUT:
                operand = instruction.operands[0]
                registers[dst] = registers[operand]
                bounds[dst] = bounds[operand]
                ledger.alias(dst, operand)
            else:  # pragma: no cover - defensive
                raise CompilationError(f"unknown opcode {opcode}")
            for operand in instruction.operands:
                if last_use[operand] == dst:
                    registers[operand] = None

        # -- decode outputs and assemble one report per input set ------------
        initial_budget = params.initial_noise_budget
        minimum_budget = initial_budget
        exhausted = False
        half = t // 2
        latency_ms = meter.total_latency_ms
        counts = meter.operation_counts()
        reports = [
            ExecutionReport(
                latency_ms=latency_ms,
                operation_counts=dict(counts),
                encrypted_inputs=encrypted_inputs,
                backend=self.name,
                batch_size=batch,
            )
            for _ in range(batch)
        ]
        for register, name, length in program.outputs:
            array = registers[register]
            if not ledger.is_ciphertext(register):
                raw = array[:length] % t
                decoded = [int(v - t) if v > half else int(v) for v in raw]
                for report in reports:
                    report.outputs[name] = list(decoded)
                continue
            budget = ledger.output_budget(register)
            minimum_budget = min(minimum_budget, budget)
            if budget <= 0.0:
                exhausted = True
            raw = array[:, :length] % t
            centred = np.where(raw > half, raw - t, raw)
            for row, report in enumerate(reports):
                report.outputs[name] = [int(v) for v in centred[row]]

        remaining = max(0.0, minimum_budget)
        consumed = initial_budget - remaining
        for report in reports:
            report.remaining_noise_budget = remaining
            report.consumed_noise_budget = consumed
            report.noise_budget_exhausted = exhausted
        return reports
