"""The batched vector VM: compiled tapes serve B users in one sweep.

The circuit's SSA instruction list is first **backend-compiled** by
:mod:`repro.backends.tapeopt` into an optimized executable tape
(:class:`~repro.backends.tape.CompiledTape`): alias-free, superinstruction
fused, liveness-colored onto a fixed register arena of ``(B, n)`` int64
buffers, with all noise/latency accounting replayed once at compile time.
Executing a batch is then a single pass of in-place numpy ops over the
arena — no ciphertext objects, no per-instruction ledger calls, and (at the
default opt level) no Python dispatch either: a per-tape specializer emits
one straight-line generated function per (tape, reduction plan).

Compiled tapes are memoized process-wide by circuit fingerprint + BFV
parameters (:func:`repro.backends.tapeopt.get_compiled_tape`), so the
JobServer's coalesced batches reuse tapes across ticks and across backend
instances.

Three opt levels, selectable via ``VectorVMBackend(opt_level=...)``:

* ``2`` (default) — optimized tape run through the per-tape specialized
  function;
* ``1`` — optimized tape run through the generic dispatch interpreter
  (:func:`repro.backends.tape._interpret`);
* ``0`` — the legacy per-instruction stacked-rows interpreter, registered
  separately as the ``vector-vm-interp`` backend so benchmarks and the
  ``vm-tapeopt`` ablation study can toggle the optimization off.

Two properties keep every level bit-compatible with the reference backend:

* **Congruence-preserving lazy reduction** — slot values are kept as signed
  int64 *centred* residues and only reduced modulo ``t`` when a tracked
  magnitude bound approaches the int64 range.  All intermediate values stay
  congruent mod ``t`` and the final decode is centred mod ``t``, so
  reduction *placement* (which the tape precomputes per input-magnitude
  bucket) can never change decoded outputs.
* **Shared accounting** — noise budgets and latency go through the same
  :class:`~repro.backends.base.NoiseLedger` /
  :class:`~repro.fhe.meter.ExecutionMeter` formulas in the same operation
  order as the reference evaluator.  Accounting is input independent, so
  the tape replays it once at compile time, float-for-float identical.

Simulated latency models the *circuit*, so every report in a batch carries
the same ``latency_ms`` as a single reference execution; the VM's win is
wall-clock throughput, measured by ``scripts/bench_backends.py``.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.backends.base import BaseBackend, NoiseLedger
from repro.backends.registry import register_backend
from repro.backends.tapeopt import get_compiled_tape, scheduling_cost_ms
from repro.compiler.circuit import CircuitProgram, Opcode
from repro.compiler.executor import ExecutionReport, Value
from repro.core.exceptions import CompilationError
from repro.fhe.meter import ExecutionMeter
from repro.fhe.params import BFVParameters

__all__ = ["VectorVMBackend"]

#: Reduce operands once a projected magnitude bound reaches this limit; the
#: next operation is then guaranteed to stay inside signed 64-bit range.
_REDUCE_LIMIT = 1 << 62


@register_backend(
    "vector-vm",
    description=(
        "tape-compiled register VM: fused superinstructions over a "
        "liveness-colored arena, executing B input sets as stacked numpy rows"
    ),
    use_when="batched throughput: many users/trials of one circuit per tape pass",
)
class VectorVMBackend(BaseBackend):
    """Execute a circuit for a whole batch of input sets in one tape sweep."""

    name = "vector-vm"
    produces_outputs = True

    def __init__(self, opt_level: int = 2, verify: bool = False) -> None:
        self.opt_level = int(opt_level)
        #: Run the static tape verifier on every fresh tape compile; ERROR
        #: findings raise TapeVerificationError instead of executing a
        #: miscompiled tape.
        self.verify = bool(verify)

    def execute(
        self,
        program: CircuitProgram,
        inputs: Mapping[str, Value],
        params: Optional[BFVParameters] = None,
        context: Optional[object] = None,
    ) -> ExecutionReport:
        if params is None and context is not None:
            params = context.params
        report = self.execute_many(program, [inputs], params=params)[0]
        return report

    def execute_many(
        self,
        program: CircuitProgram,
        inputs_list: Sequence[Mapping[str, Value]],
        params: Optional[BFVParameters] = None,
    ) -> List[ExecutionReport]:
        if not inputs_list:
            return []
        if params is None:
            params = BFVParameters.default()
        if self.opt_level <= 0:
            return self._execute_legacy(program, inputs_list, params)
        tape = get_compiled_tape(program, params, verify=self.verify)
        return tape.execute_batch(
            inputs_list,
            specialize=self.opt_level >= 2,
            backend_name=self.name,
        )

    def scheduling_cost_ms(
        self,
        program: CircuitProgram,
        params: BFVParameters,
        latency_model,
    ) -> float:
        """Analytical scheduling weight refined by the compiled tape.

        At opt level >= 1 the executed tape is shorter than the instruction
        list (fusion, alias/dead elimination), so scheduling weights scale by
        the executed/original op ratio; the legacy interpreter runs the tape
        as written and keeps the raw model.
        """
        if self.opt_level <= 0:
            return program.estimated_latency_ms(latency_model)
        return scheduling_cost_ms(program, params, latency_model)

    # ------------------------------------------------------------------
    # opt level 0: the legacy per-instruction stacked-rows interpreter
    # ------------------------------------------------------------------
    def _execute_legacy(
        self,
        program: CircuitProgram,
        inputs_list: Sequence[Mapping[str, Value]],
        params: BFVParameters,
    ) -> List[ExecutionReport]:
        t = params.plain_modulus
        n = params.slot_count
        half = t // 2
        batch = len(inputs_list)
        meter = ExecutionMeter(params=params)
        ledger = NoiseLedger(meter)
        reduced_bound = half + 1  # centred residues lie in [-(t//2), t//2]

        count = len(program.instructions)
        registers: List[Optional[np.ndarray]] = [None] * count
        bounds: List[int] = [0] * count
        encrypted_inputs = 0

        # Aliases are explicit: ROTATE step==0 and OUTPUT produce no array of
        # their own, they resolve to their operand's canonical register.
        # Binding registers[dst] to the operand's array object (the old
        # behaviour) corrupts results the moment an in-place op lands on
        # either register; the canonical map cannot.
        canon = list(range(count))
        for instruction in program.instructions:
            if instruction.opcode is Opcode.OUTPUT or (
                instruction.opcode is Opcode.ROTATE and instruction.step == 0
            ):
                canon[instruction.result] = canon[instruction.operands[0]]

        # Liveness: drop each canonical register's array after its last use
        # so the working set stays cache-sized (holding every SSA register
        # alive costs ~100 us/op in page faults at realistic batch sizes).
        last_use = [0] * count
        for instruction in program.instructions:
            for operand in instruction.operands:
                last_use[canon[operand]] = instruction.result
        for register, _, _ in program.outputs:
            last_use[canon[register]] = count  # outputs live until decode

        def centred(value: int) -> int:
            residue = int(value) % t
            return residue - t if residue > half else residue

        def reduce_register(index: int) -> None:
            residues = registers[index] % t
            np.subtract(residues, t, out=residues, where=residues > half)
            registers[index] = residues
            bounds[index] = reduced_bound

        for instruction in program.instructions:
            opcode = instruction.opcode
            dst = instruction.result
            if opcode is Opcode.LOAD_INPUT:
                array = np.zeros((batch, n), dtype=np.int64)
                bound = 0
                for column, slot in enumerate(instruction.layout):
                    if slot.constant is not None:
                        value = centred(slot.constant)
                        array[:, column] = value
                        bound = max(bound, abs(value))
                    else:
                        name = slot.name
                        values = []
                        for inputs in inputs_list:
                            value = inputs.get(name)
                            if value is None:
                                raise CompilationError(
                                    f"missing value for program input {name!r}"
                                )
                            if isinstance(value, (list, tuple)):
                                raise CompilationError(
                                    f"input {name!r} is packed slot-wise and must be a scalar"
                                )
                            values.append(centred(value))
                        array[:, column] = values
                        bound = max(bound, max(abs(v) for v in values))
                registers[dst] = array
                bounds[dst] = bound
                ledger.load_input(dst)
                encrypted_inputs += 1
            elif opcode is Opcode.LOAD_PLAIN:
                if instruction.name == "broadcast":
                    value = centred(instruction.values[0])
                    plain = np.full(n, value, dtype=np.int64)
                    bound = abs(value)
                else:
                    plain = np.zeros(n, dtype=np.int64)
                    values = [centred(value) for value in instruction.values]
                    plain[: len(values)] = values
                    bound = max((abs(v) for v in values), default=0)
                registers[dst] = plain
                bounds[dst] = bound
            elif opcode is Opcode.ADD or opcode is Opcode.SUB:
                lhs, rhs = canon[instruction.operands[0]], canon[instruction.operands[1]]
                if bounds[lhs] + bounds[rhs] >= _REDUCE_LIMIT:
                    reduce_register(lhs)
                    reduce_register(rhs)
                if opcode is Opcode.ADD:
                    registers[dst] = registers[lhs] + registers[rhs]
                    ledger.add(dst, *instruction.operands, "add")
                else:
                    registers[dst] = registers[lhs] - registers[rhs]
                    ledger.add(dst, *instruction.operands, "sub")
                bounds[dst] = bounds[lhs] + bounds[rhs]
            elif opcode is Opcode.MUL:
                lhs, rhs = canon[instruction.operands[0]], canon[instruction.operands[1]]
                if bounds[lhs] * bounds[rhs] >= _REDUCE_LIMIT:
                    # Reducing the larger operand is usually enough.
                    larger, smaller = (
                        (lhs, rhs) if bounds[lhs] >= bounds[rhs] else (rhs, lhs)
                    )
                    reduce_register(larger)
                    if bounds[larger] * bounds[smaller] >= _REDUCE_LIMIT:
                        reduce_register(smaller)
                registers[dst] = registers[lhs] * registers[rhs]
                bounds[dst] = bounds[lhs] * bounds[rhs]
                ledger.multiply_relinearize(dst, *instruction.operands)
            elif opcode is Opcode.ADD_PLAIN or opcode is Opcode.SUB_PLAIN:
                lhs, plain = canon[instruction.operands[0]], canon[instruction.operands[1]]
                if bounds[lhs] + bounds[plain] >= _REDUCE_LIMIT:
                    reduce_register(lhs)
                if opcode is Opcode.ADD_PLAIN:
                    registers[dst] = registers[lhs] + registers[plain]
                    ledger.add_plain(dst, instruction.operands[0], "add")
                else:
                    registers[dst] = registers[lhs] - registers[plain]
                    ledger.add_plain(dst, instruction.operands[0], "sub")
                bounds[dst] = bounds[lhs] + bounds[plain]
            elif opcode is Opcode.MUL_PLAIN:
                lhs, plain = canon[instruction.operands[0]], canon[instruction.operands[1]]
                if bounds[lhs] * bounds[plain] >= _REDUCE_LIMIT:
                    reduce_register(lhs)
                registers[dst] = registers[lhs] * registers[plain]
                bounds[dst] = bounds[lhs] * bounds[plain]
                ledger.multiply_plain(dst, instruction.operands[0])
            elif opcode is Opcode.NEGATE:
                operand = canon[instruction.operands[0]]
                registers[dst] = -registers[operand]
                bounds[dst] = bounds[operand]
                ledger.negate(dst, instruction.operands[0])
            elif opcode is Opcode.ROTATE:
                operand = canon[instruction.operands[0]]
                step = instruction.step
                if step != 0:
                    registers[dst] = np.roll(registers[operand], -step, axis=1)
                    bounds[dst] = bounds[operand]
                ledger.rotate(dst, instruction.operands[0], step)
            elif opcode is Opcode.OUTPUT:
                ledger.alias(dst, instruction.operands[0])
            else:  # pragma: no cover - defensive
                raise CompilationError(f"unknown opcode {opcode}")
            for operand in instruction.operands:
                resolved = canon[operand]
                if last_use[resolved] == dst:
                    registers[resolved] = None

        # -- decode outputs and assemble one report per input set ------------
        initial_budget = params.initial_noise_budget
        minimum_budget = initial_budget
        exhausted = False
        half = t // 2
        latency_ms = meter.total_latency_ms
        counts = meter.operation_counts()
        reports = [
            ExecutionReport(
                latency_ms=latency_ms,
                operation_counts=dict(counts),
                encrypted_inputs=encrypted_inputs,
                backend=self.name,
                batch_size=batch,
            )
            for _ in range(batch)
        ]
        for register, name, length in program.outputs:
            array = registers[canon[register]]
            if not ledger.is_ciphertext(register):
                raw = array[:length] % t
                decoded = [int(v - t) if v > half else int(v) for v in raw]
                for report in reports:
                    report.outputs[name] = list(decoded)
                continue
            budget = ledger.output_budget(register)
            minimum_budget = min(minimum_budget, budget)
            if budget <= 0.0:
                exhausted = True
            raw = array[:, :length] % t
            centred = np.where(raw > half, raw - t, raw)
            for row, report in enumerate(reports):
                report.outputs[name] = [int(v) for v in centred[row]]

        remaining = max(0.0, minimum_budget)
        consumed = initial_budget - remaining
        for report in reports:
            report.remaining_noise_budget = remaining
            report.consumed_noise_budget = consumed
            report.noise_budget_exhausted = exhausted
        return reports


@register_backend(
    "vector-vm-interp",
    description=(
        "the vector VM with tape compilation disabled: legacy per-instruction "
        "stacked-rows interpreter (opt_level=0)"
    ),
    use_when="ablating the tape optimizer (vm-tapeopt study) and opt on/off benchmarks",
)
def _vector_vm_interp(**options):
    options.setdefault("opt_level", 0)
    backend = VectorVMBackend(**options)
    backend.name = "vector-vm-interp"
    return backend
