"""Execution-backend registry: named factories, serializable specs.

The mirror image of :mod:`repro.compiler.registry` for the *execution* half
of the system: every backend is registered under a short name
(``reference``, ``vector-vm``, ``cost-sim``) through the same decorator/spec
idiom as ``@register_compiler``.  A frozen, picklable :class:`BackendSpec`
names one configuration, can :meth:`~BackendSpec.build` the backend object
and renders a canonical, version-stamped :meth:`~BackendSpec.describe`
string — the execution-side counterpart of the compiler ``describe()``
strings that key the compilation cache, used by the
:class:`~repro.service.execution.ExecutionService` to key its measured
per-circuit execution times.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.compiler.registry import is_canonical, render_value

__all__ = [
    "BackendInfo",
    "BackendSpec",
    "register_backend",
    "available_backends",
    "backend_info",
    "build_backend",
    "resolve_backend",
    "get_backend",
    "default_backend_name",
    "DEFAULT_BACKEND",
]

#: The backend used when none is named and ``REPRO_BACKEND`` is unset.
DEFAULT_BACKEND = "reference"


def default_backend_name() -> str:
    """The backend used when callers pass ``backend=None``.

    ``REPRO_BACKEND`` overrides the built-in default (``reference``), which
    lets whole harnesses be rerun on another backend without touching code.
    """
    return os.environ.get("REPRO_BACKEND", "") or DEFAULT_BACKEND


@dataclass(frozen=True)
class BackendInfo:
    """One registry entry."""

    name: str
    #: Builds the backend object from keyword options.
    factory: Callable[..., object]
    description: str = ""
    #: When to reach for this backend (shown by ``list-backends``).
    use_when: str = ""
    #: Whether the backend decrypts real output values (False for the
    #: cost-only simulator, whose reports carry accounting but no outputs).
    produces_outputs: bool = True


_REGISTRY: Dict[str, BackendInfo] = {}
_builtins_loaded = False


def register_backend(
    name: str,
    *,
    description: str = "",
    use_when: str = "",
    produces_outputs: bool = True,
) -> Callable:
    """Decorator registering an execution-backend factory under ``name``."""

    def decorator(factory: Callable[..., object]) -> Callable[..., object]:
        if name in _REGISTRY:
            raise ValueError(f"backend {name!r} is already registered")
        doc_lines = (factory.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = BackendInfo(
            name=name,
            factory=factory,
            description=description or (doc_lines[0] if doc_lines else ""),
            use_when=use_when,
            produces_outputs=produces_outputs,
        )
        return factory

    return decorator


def _ensure_builtins() -> None:
    """Import the modules that register the built-in backends."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.backends.reference  # noqa: F401
    import repro.backends.vector_vm  # noqa: F401
    import repro.backends.cost_sim  # noqa: F401


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def backend_info(name: str) -> BackendInfo:
    """The registry entry for ``name``."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def build_backend(name: str, **options: object) -> object:
    """Build a fresh backend instance for ``name`` with ``options``."""
    return BackendSpec.create(name, **options).build()


@dataclass(frozen=True)
class BackendSpec:
    """A named, serializable execution-backend configuration."""

    name: str
    options: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def create(cls, name: str, **options: object) -> "BackendSpec":
        return cls(name=name, options=tuple(sorted(options.items())))

    @property
    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    def build(self) -> object:
        """Construct the backend object this spec names."""
        info = backend_info(self.name)
        backend = info.factory(**self.options_dict)
        try:
            backend._backend_spec = self  # type: ignore[attr-defined]
        except AttributeError:
            pass
        return backend

    @property
    def stable(self) -> bool:
        """True when :meth:`describe` is byte-stable across processes."""
        return is_canonical(self.options_dict)

    def describe(self) -> str:
        """Canonical, version-stamped rendering of this configuration.

        Versions the execution side of cache keys the same way compiler
        ``describe()`` strings version the compilation side: a persistent
        store keyed on it never mixes figures from different backend
        implementations or package versions.
        """
        import repro

        inner = ",".join(
            f"{key}={render_value(value)}" for key, value in self.options
        )
        return f"repro-{repro.__version__}::backend::{self.name}::{{{inner}}}"


def resolve_backend(
    backend: object = None, **options: object
) -> Tuple[object, Optional[BackendSpec]]:
    """Normalize a name / spec / backend object into ``(instance, spec)``.

    ``None`` resolves to :func:`default_backend_name`, so every entry point
    shares one ``REPRO_BACKEND``-aware default.
    """
    if backend is None:
        backend = default_backend_name()
    if isinstance(backend, str):
        spec = BackendSpec.create(backend, **options)
        return spec.build(), spec
    if options:
        raise ValueError("backend options require a registry name, not an instance")
    if isinstance(backend, BackendSpec):
        return backend.build(), backend
    return backend, getattr(backend, "_backend_spec", None)


def get_backend(backend: object = None, **options: object) -> object:
    """The backend instance for a name, spec, live object or None (default)."""
    instance, _ = resolve_backend(backend, **options)
    return instance
