"""The common execution-backend protocol and shared accounting machinery.

An :class:`ExecutionBackend` turns a lowered
:class:`~repro.compiler.circuit.CircuitProgram` plus program inputs into
:class:`~repro.compiler.executor.ExecutionReport` objects.  Three built-in
backends register themselves (see :mod:`repro.backends.registry`):

``reference``
    The SEAL-style :class:`~repro.fhe.evaluator.Evaluator` interpreter —
    the bit-compatibility baseline every other backend is tested against.
``vector-vm``
    A linearized register VM executing a whole batch of input sets as
    stacked numpy arrays in one pass over the instruction tape.
``cost-sim``
    A no-crypto simulator running only the noise/latency models, for fast
    design-space exploration and RL reward evaluation.

All backends meter through one :class:`~repro.fhe.meter.ExecutionMeter` and
replicate the evaluator's noise formulas through one :class:`NoiseLedger`,
which is what makes their latency, operation-count and noise figures
bit-identical by construction.
"""

from __future__ import annotations

import hashlib
from typing import List, Mapping, Optional, Protocol, Sequence, runtime_checkable

from repro.compiler.circuit import CircuitProgram
from repro.compiler.executor import ExecutionReport, Value
from repro.fhe.meter import ExecutionMeter
from repro.fhe.params import BFVParameters

__all__ = [
    "ExecutionBackend",
    "BaseBackend",
    "NoiseLedger",
    "backend_produces_outputs",
    "program_fingerprint",
]


def backend_produces_outputs(backend: object) -> bool:
    """Whether ``backend`` decrypts real outputs (False for ``cost-sim``).

    The single place the skip-verification rule lives: callers that verify
    decrypted outputs against the plaintext reference consult this to mark
    accounting-only results as unverified rather than vacuously correct.
    """
    return bool(getattr(backend, "produces_outputs", True))


@runtime_checkable
class ExecutionBackend(Protocol):
    """What every execution backend exposes."""

    name: str
    #: False for accounting-only backends whose reports carry no outputs.
    produces_outputs: bool

    def execute(
        self,
        program: CircuitProgram,
        inputs: Mapping[str, Value],
        params: Optional[BFVParameters] = None,
        context: Optional[object] = None,
    ) -> ExecutionReport: ...

    def execute_many(
        self,
        program: CircuitProgram,
        inputs_list: Sequence[Mapping[str, Value]],
        params: Optional[BFVParameters] = None,
    ) -> List[ExecutionReport]: ...


class BaseBackend:
    """Default ``execute_many``: sequential ``execute`` per input set.

    Backends with genuine batch execution (the vector VM) override it; the
    default keeps every backend usable through the batched entry points.
    """

    name = "base"
    produces_outputs = True

    def execute(
        self,
        program: CircuitProgram,
        inputs: Mapping[str, Value],
        params: Optional[BFVParameters] = None,
        context: Optional[object] = None,
    ) -> ExecutionReport:
        raise NotImplementedError

    def execute_many(
        self,
        program: CircuitProgram,
        inputs_list: Sequence[Mapping[str, Value]],
        params: Optional[BFVParameters] = None,
    ) -> List[ExecutionReport]:
        reports = [self.execute(program, inputs, params=params) for inputs in inputs_list]
        for report in reports:
            report.batch_size = len(reports)
        return reports


class NoiseLedger:
    """Scalar per-register noise-budget bookkeeping for tape backends.

    Replicates the :class:`~repro.fhe.evaluator.Evaluator` formulas operation
    by operation (same costs, same evaluation order), so a tape backend's
    noise figures are bit-identical to a reference execution without ever
    materialising :class:`~repro.fhe.ciphertext.Ciphertext` objects.  Meters
    every operation through the shared :class:`ExecutionMeter` as it goes.
    """

    __slots__ = (
        "meter",
        "initial_budget",
        "budget",
        "_add",
        "_negate",
        "_multiply",
        "_multiply_plain",
        "_relinearize",
        "_rotate",
    )

    def __init__(self, meter: ExecutionMeter) -> None:
        self.meter = meter
        noise = meter.noise_model
        self.initial_budget = meter.params.initial_noise_budget
        self.budget = {}  # register -> remaining bits (ciphertexts only)
        self._add = noise.add_cost()
        self._negate = noise.negate_cost()
        self._multiply = noise.multiply_cost()
        self._multiply_plain = noise.multiply_plain_cost()
        self._relinearize = noise.relinearize_cost()
        self._rotate = noise.rotate_bits

    def load_input(self, dst: int) -> None:
        self.budget[dst] = self.initial_budget

    def add(self, dst: int, lhs: int, rhs: int, operation: str) -> None:
        budget = self.budget
        budget[dst] = min(budget[lhs], budget[rhs]) - self._add
        self.meter.record(operation)

    def add_plain(self, dst: int, lhs: int, operation: str) -> None:
        self.budget[dst] = self.budget[lhs] - self._add
        self.meter.record(operation)

    def multiply_relinearize(self, dst: int, lhs: int, rhs: int) -> None:
        budget = self.budget
        value = min(budget[lhs], budget[rhs]) - self._multiply
        self.meter.record("multiply")
        budget[dst] = value - self._relinearize
        self.meter.record("relinearize")

    def multiply_plain(self, dst: int, lhs: int) -> None:
        self.budget[dst] = self.budget[lhs] - self._multiply_plain
        self.meter.record("multiply_plain")

    def negate(self, dst: int, operand: int) -> None:
        self.budget[dst] = self.budget[operand] - self._negate
        self.meter.record("negate")

    def rotate(self, dst: int, operand: int, step: int) -> None:
        # Normalize mod n exactly the way the evaluator does: rotation by
        # any multiple of the slot count is the identity, so the accounting
        # stays in lockstep across the reference and VM backends for
        # congruent steps.
        if step % self.meter.params.slot_count == 0:
            # The evaluator returns a budget-preserving copy without logging.
            self.budget[dst] = self.budget[operand]
            return
        self.budget[dst] = self.budget[operand] - self._rotate
        self.meter.record("rotate")

    def alias(self, dst: int, src: int) -> None:
        if src in self.budget:
            self.budget[dst] = self.budget[src]

    def is_ciphertext(self, register: int) -> bool:
        return register in self.budget

    def output_budget(self, register: int) -> float:
        """Remaining budget of an output register, clamped at zero."""
        return max(0.0, self.budget[register])


def program_fingerprint(program: CircuitProgram) -> str:
    """Content hash of a circuit (instructions + outputs, name excluded).

    The execution-side analogue of the compilation cache key: two circuits
    with identical instruction tapes share measured-execution-time entries
    regardless of the benchmark name they were compiled under.
    """
    digest = hashlib.sha256()
    for instruction in program.instructions:
        digest.update(
            repr(
                (
                    instruction.result,
                    instruction.opcode.value,
                    instruction.operands,
                    instruction.step,
                    instruction.layout,
                    instruction.values,
                )
            ).encode("utf-8")
        )
    digest.update(repr(program.outputs).encode("utf-8"))
    return digest.hexdigest()
