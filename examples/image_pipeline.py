"""Privacy-preserving image processing: the Porcupine image kernels.

Compiles the Box Blur, Gx/Gy gradient and Roberts-Cross kernels on an
encrypted image, compares the CHEHAB pipeline against the Coyote-style
baseline, and prints the per-kernel latency, noise-budget and operation-mix
comparison (a miniature of the paper's Figs. 5 and 7).

Run with:  python examples/image_pipeline.py
"""

from repro.baselines import CoyoteCompiler
from repro.compiler import Compiler, CompilerOptions, execute
from repro.kernels.porcupine import box_blur, gx_kernel, gy_kernel, roberts_cross


def main() -> None:
    kernels = {
        "box_blur_3x3": box_blur(3),
        "gx_3x3": gx_kernel(3),
        "gy_3x3": gy_kernel(3),
        "roberts_cross_3x3": roberts_cross(3),
    }
    chehab = Compiler(CompilerOptions(optimizer="greedy"))
    coyote = CoyoteCompiler()

    header = f"{'kernel':20s} {'compiler':8s} {'latency (ms)':>12s} {'noise (bits)':>12s} {'rot':>4s} {'ct-pt':>6s} {'ct-ct':>6s}"
    print(header)
    print("-" * len(header))
    for name, program in kernels.items():
        # A tiny 3x3 "image" with pixel values 0..8.
        inputs = {f"img_{r}_{c}": r * 3 + c for r in range(3) for c in range(3)}
        for label, compiler in (("CHEHAB", chehab), ("Coyote", coyote)):
            report = compiler.compile_expression(program.output_expr, name=name)
            execution = execute(report.circuit, inputs)
            stats = report.stats
            print(
                f"{name:20s} {label:8s} {execution.latency_ms:12.1f} "
                f"{execution.consumed_noise_budget:12.1f} {stats.rotations:4d} "
                f"{stats.ct_pt_multiplications:6d} {stats.ct_ct_multiplications:6d}"
            )


if __name__ == "__main__":
    main()
