"""Quickstart: compile, optimize and run one FHE kernel end to end.

This walks through the paper's motivating example (Sec. 2) on the unified
compilation API: a small unstructured expression is staged with the embedded
DSL, compiled with a named compiler from the registry
(``repro.compile(...)``), executed on the simulated BFV backend and verified
against the plaintext reference (``repro.execute(...)``).

Run with:  python examples/quickstart.py

The same facade is available on the command line:

    python -m repro list-compilers
    python -m repro run "(+ (* a b) c)" --inputs a=2,b=3,c=4
"""

import repro
from repro.compiler import Ciphertext, Program
from repro.ir.printer import to_sexpr


def main() -> None:
    # 1. Stage the program with the embedded DSL (operator overloading).
    with Program("motivating_example") as program:
        v = [Ciphertext(f"v{i}") for i in range(1, 11)]
        x = ((v[0] * v[1]) * (v[2] * v[3]) + (v[2] * v[3]) * (v[4] * v[5])) * (
            (v[6] * v[7]) * (v[8] * v[9])
        )
        x.set_output("x")

    print("Source IR:")
    print(" ", to_sexpr(program.output_expr))

    print("\nRegistered compilers:")
    for row in repro.list_compilers():
        print(f"  {row['name']:<10} {row['description']}")

    # 2. Compile with the greedy TRS configuration by name (swap in any other
    #    registry name, or pass a trained RL agent via compiler="chehab-rl").
    report = repro.compile(program, compiler="greedy")

    print(f"\nAnalytical cost: {report.initial_cost:.1f} -> {report.final_cost:.1f} "
          f"({report.cost_improvement:.0%} reduction)")
    print("Applied rewrites:", [step.rule_name for step in report.rewrite_steps])
    print("Circuit stats:", report.stats.as_dict())
    print("Pipeline trace:")
    for stage in report.trace.stages:
        print(f"  {stage.name:<14} {stage.wall_time_s * 1000.0:8.3f} ms "
              f"cost {stage.cost_before:.1f} -> {stage.cost_after:.1f}")

    # 3. Execute on the simulated BFV backend and verify against plaintext.
    inputs = {f"v{i}": i for i in range(1, 11)}
    outcome = repro.execute(report, inputs)
    print(f"\nDecrypted output: {outcome.outputs}")
    print(f"Plaintext reference: {outcome.reference}")
    print(f"Simulated latency: {outcome.execution.latency_ms:.1f} ms, "
          f"consumed noise budget: {outcome.execution.consumed_noise_budget:.1f} bits")
    assert outcome.correct, "decrypted output mismatch!"

    # 4. Emit SEAL-style C++ for the compiled circuit.
    print("\nGenerated SEAL-style C++ (first lines):")
    print("\n".join(report.seal_code().splitlines()[:12]))


if __name__ == "__main__":
    main()
