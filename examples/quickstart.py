"""Quickstart: compile, optimize and run one FHE kernel end to end.

This walks through the paper's motivating example (Sec. 2): a small
unstructured expression is staged with the embedded DSL, optimized by the
term rewriting system, lowered to a ciphertext circuit and executed on the
simulated BFV backend, verifying the decrypted result against the plaintext
reference.

Run with:  python examples/quickstart.py
"""

from repro.compiler import Compiler, CompilerOptions, Program, Ciphertext, execute, reference_output
from repro.ir.printer import to_sexpr


def main() -> None:
    # 1. Stage the program with the embedded DSL (operator overloading).
    with Program("motivating_example") as program:
        v = [Ciphertext(f"v{i}") for i in range(1, 11)]
        x = ((v[0] * v[1]) * (v[2] * v[3]) + (v[2] * v[3]) * (v[4] * v[5])) * (
            (v[6] * v[7]) * (v[8] * v[9])
        )
        x.set_output("x")

    print("Source IR:")
    print(" ", to_sexpr(program.output_expr))

    # 2. Compile with the greedy TRS optimizer (swap in a trained RL agent by
    #    passing it as `optimizer=` -- see examples/train_agent.py).
    compiler = Compiler(CompilerOptions(optimizer="greedy"))
    report = compiler.compile_expression(program.output_expr, name=program.name)

    print(f"\nAnalytical cost: {report.initial_cost:.1f} -> {report.final_cost:.1f} "
          f"({report.cost_improvement:.0%} reduction)")
    print("Applied rewrites:", [step.rule_name for step in report.rewrite_steps])
    print("Circuit stats:", report.stats.as_dict())

    # 3. Execute on the simulated BFV backend and verify.
    inputs = {f"v{i}": i for i in range(1, 11)}
    execution = execute(report.circuit, inputs)
    expected = reference_output(program.output_expr, inputs)
    print(f"\nDecrypted output: {execution.outputs['result']}")
    print(f"Plaintext reference: {expected}")
    print(f"Simulated latency: {execution.latency_ms:.1f} ms, "
          f"consumed noise budget: {execution.consumed_noise_budget:.1f} bits")
    assert execution.outputs["result"] == expected, "decrypted output mismatch!"

    # 4. Emit SEAL-style C++ for the compiled circuit.
    print("\nGenerated SEAL-style C++ (first lines):")
    print("\n".join(report.seal_code().splitlines()[:12]))


if __name__ == "__main__":
    main()
