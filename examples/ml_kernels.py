"""Privacy-preserving ML building blocks: dot product, distances, regression.

These kernels (from the Porcupine suite) are the building blocks of
encrypted ML inference.  The example compiles each with the CHEHAB pipeline,
shows the rotate-and-reduce circuits the term rewriting system discovers,
and verifies the decrypted results.

Run with:  python examples/ml_kernels.py
"""

from repro.compiler import Compiler, CompilerOptions, execute, reference_output
from repro.kernels.porcupine import (
    dot_product,
    hamming_distance,
    l2_distance,
    linear_regression,
    polynomial_regression,
)


def main() -> None:
    size = 8
    kernels = {
        "dot_product": dot_product(size),
        "hamming_distance": hamming_distance(size),
        "l2_distance": l2_distance(size),
        "linear_regression": linear_regression(size),
        "polynomial_regression": polynomial_regression(size),
    }
    compiler = Compiler(CompilerOptions(optimizer="greedy"))

    for name, program in kernels.items():
        inputs = {}
        for index, input_name in enumerate(program.inputs):
            inputs[input_name] = (index % 2) if name == "hamming_distance" else (index % 5) + 1
        report = compiler.compile_expression(program.output_expr, name=name)
        execution = execute(report.circuit, inputs)
        expected = reference_output(program.output_expr, inputs)
        status = "OK " if execution.outputs["result"] == expected else "FAIL"
        print(
            f"[{status}] {name:24s} size={size:3d}  "
            f"cost {report.initial_cost:8.1f} -> {report.final_cost:7.1f}  "
            f"latency {execution.latency_ms:7.1f} ms  "
            f"noise {execution.consumed_noise_budget:5.1f} bits  "
            f"rules {[step.rule_name for step in report.rewrite_steps][:3]}"
        )


if __name__ == "__main__":
    main()
