"""Train a CHEHAB RL agent from scratch and deploy it in the compiler.

This example runs the full loop of the paper at a small scale:

1. synthesize a training corpus with the motif-based generator (the
   reproduction's stand-in for the LLM-synthesized dataset), deduplicated by
   ICI canonical form and with the benchmark kernels excluded;
2. train the hierarchical actor-critic with PPO;
3. plug the trained agent into the compiler pipeline and compare it against
   the Coyote-style baseline on a few kernels.

The defaults finish in a couple of minutes on a laptop; raise
``TRAIN_TIMESTEPS`` (the paper uses 2,000,000) for a stronger policy.

Run with:  python examples/train_agent.py
"""

from repro.baselines import CoyoteCompiler
from repro.compiler import Compiler, CompilerOptions, execute
from repro.datagen import SyntheticKernelGenerator, build_dataset
from repro.ir.tokenize import ICITokenizer
from repro.kernels import small_benchmark_suite
from repro.rl import ChehabAgent, PPOConfig
from repro.rl.policy import PolicyConfig

TRAIN_TIMESTEPS = 512
DATASET_SIZE = 64


def main() -> None:
    # 1. Build the training corpus (benchmarks excluded, like the paper).
    benchmarks = small_benchmark_suite()
    generator = SyntheticKernelGenerator(seed=0, max_size=6)
    dataset = build_dataset(
        generator, DATASET_SIZE, benchmarks=[b.expression() for b in benchmarks]
    )
    print(f"Training corpus: {len(dataset)} unique expressions "
          f"({dataset.duplicates_rejected} duplicates rejected)")

    # 2. Train the agent with PPO.
    tokenizer = ICITokenizer(max_length=96)
    agent = ChehabAgent(
        policy_config=PolicyConfig.small(vocab_size=tokenizer.vocab_size, max_tokens=96, seed=0),
        max_steps=25,
    )
    agent.tokenizer = tokenizer
    history = agent.train(
        list(dataset),
        total_timesteps=TRAIN_TIMESTEPS,
        num_envs=2,
        ppo_config=PPOConfig.small(seed=0),
    )
    print("Mean episode reward per update:", [round(r, 2) for r in history.mean_episode_reward])

    # 3. Deploy the agent inside the compiler and compare against Coyote.
    rl_compiler = Compiler(CompilerOptions(optimizer=agent))
    coyote = CoyoteCompiler()
    for benchmark in benchmarks[:5]:
        inputs = benchmark.sample_inputs(seed=0)
        expr = benchmark.expression()
        for label, compiler in (("CHEHAB RL", rl_compiler), ("Coyote", coyote)):
            report = compiler.compile_expression(expr, name=benchmark.name)
            execution = execute(report.circuit, inputs)
            print(
                f"{benchmark.name:24s} {label:10s} latency={execution.latency_ms:8.1f} ms  "
                f"noise={execution.consumed_noise_budget:6.1f} bits  "
                f"compile={report.compile_time_s:6.3f} s"
            )


if __name__ == "__main__":
    main()
