#!/usr/bin/env python
"""CI smoke of the overload hardening: shed, complete, account for everything.

Bursts a deliberately over-capacity batch of small workloads into a
:class:`~repro.server.server.JobServer` with a bounded queue and an SLO
policy, then checks the invariants CI cares about:

* the bounded queue shed jobs (> 0) and still completed jobs (> 0);
* nothing was lost or double-counted:
  ``jobs_completed + jobs_shed + jobs_failed == jobs_submitted`` in the
  telemetry, and the traffic report agrees with those counters;
* shed jobs carry a terminal ``shed`` status with a reason, visible
  through ``JobServer.jobs()``;
* goodput is positive and the SLO report covers every priority class;
* the server closes cleanly.

Exits non-zero (with a one-line reason) on any violation.
"""

from __future__ import annotations

import argparse
import os
import sys

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.server import JobServer, SLOPolicy
from repro.workloads import generate_schedule, overload_mix, run_server_traffic


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=40, help="burst size")
    parser.add_argument("--queue-capacity", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    mix = overload_mix()
    priorities = sorted({entry.priority for entry in mix})
    policy = SLOPolicy.from_budgets({p: 5.0 for p in priorities})
    schedule = generate_schedule(mix, args.jobs, seed=args.seed)  # burst at t=0

    server = JobServer(queue_capacity=args.queue_capacity, slo=policy, workers=1)
    try:
        report = run_server_traffic(schedule, server=server, check_oracle=True)
        counters = server.telemetry.snapshot()["counters"]
        slo_rows = server.slo_report()
        shed_rows = [row for row in server.jobs() if row["status"] == "shed"]
    finally:
        server.close()

    submitted = counters.get("jobs_submitted", 0)
    completed = counters.get("jobs_completed", 0)
    shed = counters.get("jobs_shed", 0)
    failed = counters.get("jobs_failed", 0)
    if submitted != args.jobs:
        print(f"FAIL: submitted {submitted}, expected {args.jobs}", file=sys.stderr)
        return 1
    if completed + shed + failed != submitted:
        print(
            f"FAIL: {completed} completed + {shed} shed + {failed} failed "
            f"!= {submitted} submitted",
            file=sys.stderr,
        )
        return 1
    if shed <= 0 or completed <= 0:
        print(
            f"FAIL: expected both shedding and completions, got "
            f"shed={shed} completed={completed}",
            file=sys.stderr,
        )
        return 1
    if (report.completed, report.shed, report.failed) != (completed, shed, failed):
        print(
            f"FAIL: traffic report ({report.completed}/{report.shed}/"
            f"{report.failed}) disagrees with telemetry "
            f"({completed}/{shed}/{failed})",
            file=sys.stderr,
        )
        return 1
    if report.goodput_jobs_per_s <= 0.0:
        print("FAIL: goodput is not positive", file=sys.stderr)
        return 1
    if report.oracle_mismatches:
        print(
            f"FAIL: oracle mismatches at arrivals {report.oracle_mismatches}",
            file=sys.stderr,
        )
        return 1
    if len(shed_rows) != shed or any(not row.get("error") for row in shed_rows):
        print("FAIL: shed jobs missing terminal status or reason", file=sys.stderr)
        return 1
    if sorted(int(p) for p in slo_rows) != priorities:
        print(
            f"FAIL: SLO report covers {sorted(slo_rows)}, expected {priorities}",
            file=sys.stderr,
        )
        return 1

    print(
        f"jobs={args.jobs} completed={completed} shed={shed} failed={failed} "
        f"goodput={report.goodput_jobs_per_s:.1f}/s "
        f"slo_ok={report.slo_ok}"
    )
    print("overload smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
