#!/usr/bin/env python
"""Throughput benchmark of the execution backends (emits BENCH_backends.json).

For every kernel of the Coyote suite (and optionally others), compiles the
circuit once and measures wall-clock execution time per batch size for

* ``reference`` — B sequential runs through the SEAL-style evaluator,
* ``vector-vm`` — one batched pass over the optimized compiled tape
  (fused superinstructions + register arena + per-tape specialization),
* ``vector-vm-interp`` — the same VM with tape compilation switched off
  (the legacy per-instruction interpreter), pricing the optimizer, and
* ``cost-sim``  — the accounting-only simulator,

verifying along the way that both vector-VM variants' outputs are
bit-identical to the reference backend's.  The JSON artifact records
wall-clock per (kernel, backend, batch size), per-kernel tape statistics
(instructions before/after optimization, fused superinstruction counts,
arena peak buffers) and per-kernel plus geometric-mean speedups, so future
PRs can track the throughput trajectory; ``--check`` exits non-zero when
the geomean vector-vm speedup at the largest batch size falls below
``--min-speedup`` (the acceptance bar is 11x at B=32 since the tape
compiler landed; it was 5x for the legacy interpreter).
"""

from __future__ import annotations

import argparse
import math
import sys
import time

from _bench_common import write_bench_json

from repro.backends.tapeopt import get_compiled_tape
from repro.compiler import build_compiler, execute, execute_many
from repro.experiments.harness import geometric_mean
from repro.fhe.params import BFVParameters
from repro.kernels.registry import benchmark_suite

BACKENDS = ("reference", "vector-vm", "vector-vm-interp", "cost-sim")
#: Backends whose per-batch speedup over reference lands in the artifact.
SPEEDUP_KEYS = {"vector-vm": "speedup_vs_reference", "vector-vm-interp": "interp_speedup_vs_reference"}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", default="coyote", help="kernel suite to benchmark")
    parser.add_argument(
        "--compiler", default="initial", help="compiler producing the circuits"
    )
    parser.add_argument(
        "--degree", type=int, default=16384, help="polynomial modulus degree n"
    )
    parser.add_argument(
        "--batch-sizes", default="1,8,32,64", help="comma-separated batch sizes"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument("--out", default="BENCH_backends.json", help="output JSON path")
    parser.add_argument(
        "--check", action="store_true", help="fail unless the speedup bar is met"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=11.0,
        help="required geomean vector-vm speedup at the largest batch size",
    )
    args = parser.parse_args()

    batch_sizes = sorted(int(size) for size in args.batch_sizes.split(","))
    params = BFVParameters.default(args.degree)
    kernels = [b for b in benchmark_suite() if b.suite == args.suite]
    if not kernels:
        print(f"FAIL: no kernels in suite {args.suite!r}", file=sys.stderr)
        return 1
    compiler = build_compiler(args.compiler)

    results = []
    for benchmark in kernels:
        report = compiler.compile_expression(benchmark.expression(), name=benchmark.name)
        circuit = report.circuit
        tape_stats = get_compiled_tape(circuit, params).stats
        row = {
            "kernel": benchmark.name,
            "instructions": len(circuit.instructions),
            "tape": {
                "compute_ops": tape_stats["compute_ops"],
                "tape_ops": tape_stats["tape_ops"],
                "tape_entries": tape_stats["tape_entries"],
                "fused": tape_stats["fused"],
                "fused_total": tape_stats["fused_total"],
                "eliminated": tape_stats["eliminated"],
                "arena_slots": tape_stats["arena_slots"],
            },
            "wall_s": {backend: {} for backend in BACKENDS},
            "speedup_vs_reference": {},
            "interp_speedup_vs_reference": {},
        }
        for batch in batch_sizes:
            inputs = [benchmark.sample_inputs(seed=seed) for seed in range(batch)]
            timings = {}
            outputs = {}
            for backend in BACKENDS:
                best = math.inf
                for _ in range(args.repeats):
                    start = time.perf_counter()
                    if backend == "reference":
                        reports = [
                            execute(circuit, item, params=params, backend=backend)
                            for item in inputs
                        ]
                    else:
                        reports = execute_many(
                            circuit, inputs, params=params, backend=backend
                        )
                    best = min(best, time.perf_counter() - start)
                timings[backend] = best
                outputs[backend] = [r.outputs for r in reports]
                row["wall_s"][backend][str(batch)] = best
            for vm_backend in ("vector-vm", "vector-vm-interp"):
                if outputs["reference"] != outputs[vm_backend]:
                    print(
                        f"FAIL: {vm_backend} outputs differ from reference on "
                        f"{benchmark.name} at B={batch}",
                        file=sys.stderr,
                    )
                    return 1
                row[SPEEDUP_KEYS[vm_backend]][str(batch)] = (
                    timings["reference"] / timings[vm_backend]
                )
        results.append(row)
        speedups = ", ".join(
            f"B={batch}: {row['speedup_vs_reference'][str(batch)]:.1f}x"
            for batch in batch_sizes
        )
        print(
            f"{benchmark.name:24s} {len(circuit.instructions):4d} instr -> "
            f"{row['tape']['tape_ops']:4d} ops ({row['tape']['fused_total']:3d} fused, "
            f"{row['tape']['arena_slots']:2d} slots)   {speedups}"
        )

    largest = str(batch_sizes[-1])
    geomean = {
        str(batch): geometric_mean(
            [row["speedup_vs_reference"][str(batch)] for row in results]
        )
        for batch in batch_sizes
    }
    geomean_interp = {
        str(batch): geometric_mean(
            [row["interp_speedup_vs_reference"][str(batch)] for row in results]
        )
        for batch in batch_sizes
    }
    payload = {
        "suite": args.suite,
        "compiler": args.compiler,
        "poly_modulus_degree": args.degree,
        "batch_sizes": batch_sizes,
        "repeats": args.repeats,
        "outputs_bit_identical": True,
        "kernels": results,
        "geomean_vector_vm_speedup": geomean,
        "geomean_vector_vm_interp_speedup": geomean_interp,
    }
    write_bench_json(args.out, payload)
    print(
        f"geomean vector-vm speedup at B={largest}: {geomean[largest]:.2f}x "
        f"(tape opt off: {geomean_interp[largest]:.2f}x) "
        f"(n={args.degree}, {args.suite} suite, {args.compiler} compiler) -> {args.out}"
    )

    if args.check and geomean[largest] < args.min_speedup:
        print(
            f"FAIL: geomean speedup {geomean[largest]:.2f}x at B={largest} "
            f"is below the required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
