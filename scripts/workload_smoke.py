#!/usr/bin/env python
"""CI smoke of the workload suite and its server path.

Generates a small mixed-traffic schedule from the default workload mix
(Coyote + Porcupine kernels, a tree ensemble, the IR-lowered NN layer, with
priorities and per-workload compilers), runs it through a
:class:`~repro.server.server.JobServer` over a **persistent state
directory**, and checks the invariants CI cares about:

* every server job completes and verifies against the plaintext reference;
* server outputs are **bit-identical** to the direct ``api.execute`` path
  drawn from the same per-arrival seeds (the facade/server seed contract);
* no output disagrees with the workload's expected-output oracle;
* the telemetry snapshot reports coalesced batches (the mix contains
  repeated circuits, so the coalescer must have something to merge);
* the state directory replays to completed jobs on restart.

Exits non-zero (with a one-line reason) on any violation.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro import api
from repro.server import JobServer
from repro.workloads import default_mix, generate_schedule, run_server_traffic


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=24, help="arrivals in the schedule")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    schedule = generate_schedule(default_mix(), args.jobs, seed=args.seed)

    with tempfile.TemporaryDirectory(prefix="repro-workload-smoke-") as state_dir:
        report = run_server_traffic(schedule, state_dir=state_dir, workers=args.workers)

        if report.verified_jobs != args.jobs or report.correct != args.jobs:
            print(
                f"FAIL: {report.correct}/{report.verified_jobs} verified correct, "
                f"expected {args.jobs}/{args.jobs}",
                file=sys.stderr,
            )
            return 1
        if report.oracle_mismatches:
            print(
                f"FAIL: oracle mismatches at arrivals {report.oracle_mismatches}",
                file=sys.stderr,
            )
            return 1

        # The direct path, one api.execute per arrival from the same seeds,
        # must reproduce the server outputs bit for bit.
        for arrival, server_outputs in zip(schedule, report.outputs):
            outcome = api.execute(
                arrival.workload.source,
                arrival.inputs(),
                arrival.compiler,
                backend=arrival.backend,
                name=arrival.workload.name,
            )
            if outcome.outputs != server_outputs:
                print(
                    f"FAIL: arrival {arrival.index} ({arrival.workload.name}) differs: "
                    f"server {server_outputs} vs direct {outcome.outputs}",
                    file=sys.stderr,
                )
                return 1

        coalescing = report.coalescing
        if coalescing["batches_coalesced"] <= 0:
            print("FAIL: telemetry reports no coalesced batches", file=sys.stderr)
            return 1
        if report.histogram("job_wait_s").get("count") != args.jobs:
            print("FAIL: wait histogram did not observe every job", file=sys.stderr)
            return 1

        # Restart over the same state directory: the store replays every
        # job as completed.
        reborn = JobServer(state_dir)
        statuses = [row["status"] for row in reborn.jobs()]
        reborn.close()
        if len(statuses) != args.jobs or set(statuses) != {"completed"}:
            print(f"FAIL: replay after restart saw {statuses}", file=sys.stderr)
            return 1

    print(
        f"jobs={args.jobs} workloads={len(report.per_workload)} "
        f"coalesced_batches={int(coalescing['batches_coalesced'])} "
        f"job_coalescing_rate={coalescing['job_coalescing_rate']:.0%} "
        f"throughput={report.throughput_jobs_per_s:.1f}/s"
    )
    print("workload smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
