#!/usr/bin/env python
"""CI smoke run of the parallel cached compilation service.

Compiles a slice of the benchmark suite twice through one
:class:`repro.service.CompilationService` — cold, then warm — and checks the
three service invariants CI cares about:

* a parallel (``--workers N``) batch completes with no serial fallback and
  yields one report per job;
* the warm rerun is served entirely from the cache;
* warm wall-clock beats the cold run by at least the required factor.

Exits non-zero (with a one-line reason) on any violation.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.compiler.pipeline import CompilerOptions
from repro.kernels.registry import small_benchmark_suite
from repro.service import CompilationJob, CompilationService


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    args = parser.parse_args()

    suite = small_benchmark_suite()
    jobs = [CompilationJob(expr=b.expression(), name=b.name) for b in suite]
    service = CompilationService(
        options=CompilerOptions(optimizer="greedy", max_rewrite_steps=10),
        workers=args.workers,
    )

    start = time.perf_counter()
    cold = service.compile_batch(jobs)
    cold_wall = time.perf_counter() - start
    start = time.perf_counter()
    warm = service.compile_batch(jobs)
    warm_wall = time.perf_counter() - start

    print(
        f"jobs={len(jobs)} workers={args.workers} "
        f"cold={cold_wall:.2f}s warm={warm_wall:.4f}s "
        f"speedup={cold_wall / max(warm_wall, 1e-9):.0f}x "
        f"fallback={cold.serial_fallback_reason!r}"
    )
    if cold.serial_fallback_reason is not None:
        print("FAIL: parallel batch fell back to serial", file=sys.stderr)
        return 1
    if len(cold.reports) != len(jobs):
        print("FAIL: missing compilation reports", file=sys.stderr)
        return 1
    if warm.cache_hits != len(jobs):
        print("FAIL: warm run was not fully served from the cache", file=sys.stderr)
        return 1
    if cold_wall < args.min_speedup * warm_wall:
        print(
            f"FAIL: warm run not >={args.min_speedup}x faster "
            f"(cold {cold_wall:.3f}s, warm {warm_wall:.3f}s)",
            file=sys.stderr,
        )
        return 1
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
