#!/usr/bin/env python
"""Goodput-under-overload benchmark (emits BENCH_overload.json).

Measures what the overload hardening buys: an open-loop arrival stream is
pushed at 0.5x, 1x and 2x the server's *measured* drain capacity, once
against a **hardened** server (bounded queue, priority aging, cost-aware
admission control, per-priority SLOs) and once against an **unbounded**
one (no capacity, no admission — the pre-hardening configuration).  Each
row records offered load, completions, sheds, SLO-meeting completions and
the goodput they imply, plus the per-priority wait percentiles from
``JobServer.slo_report()``.

The collapse this guards against: at 2x capacity an unbounded queue grows
for the whole run, so late jobs wait unboundedly and goodput (SLO-meeting
completions per second) craters even though raw throughput looks fine.
The hardened server sheds the excess instead and keeps serving within
budget.  ``--check`` enforces the acceptance bar:

* the hardened 2x row sheds (> 0) and loses no jobs
  (completed + shed + failed == submitted);
* hardened goodput at 2x stays within ``--goodput-margin`` (default 15%)
  of the peak hardened goodput across all offered loads;
* the hardened 2x p99 wait of the top-priority class meets its SLO budget;
* the hardened 2x run beats the unbounded 2x run on goodput.
"""

from __future__ import annotations

import argparse
import sys
import time

from _bench_common import write_bench_json

from repro.server import Job, JobServer, SLOPolicy
from repro.workloads import generate_overload_schedule, overload_mix, run_server_traffic

FACTORS = (0.5, 1.0, 2.0)


def measure_capacity(jobs: int, workers: int, seed: int) -> float:
    """Sustained open-loop service rate of the overload mix, jobs/second.

    Two stages: a burst drain warms the compile memo and gives an upper
    bound (everything coalesces into one giant batch per circuit — no open
    loop reaches that), then an open-loop run offered at that bound, with
    an unbounded server, measures what the serving stack actually sustains
    when arrivals trickle in and the load generator shares the process.
    The overload factors are multiples of *this* rate, so "2x capacity"
    means twice what the server demonstrably serves, not twice an
    idealized ceiling.
    """
    from repro.workloads import generate_schedule

    schedule = generate_schedule(overload_mix(), jobs, seed=seed)  # burst at t=0
    server = JobServer(workers=workers)
    try:
        # Warm the compile memo so the measured rate is the steady state the
        # overload rows will actually run at.
        for arrival in schedule:
            server.submit(
                Job(
                    source=arrival.workload.source,
                    compiler=arrival.compiler,
                    backend=arrival.backend,
                    seed=arrival.seed,
                    input_range=arrival.workload.input_range,
                )
            )
        server.drain()
        start = time.perf_counter()
        for arrival in schedule:
            server.submit(
                Job(
                    source=arrival.workload.source,
                    compiler=arrival.compiler,
                    backend=arrival.backend,
                    seed=arrival.seed,
                    input_range=arrival.workload.input_range,
                )
            )
        server.drain()
        burst_rate = jobs / (time.perf_counter() - start)
    finally:
        server.close()

    server = JobServer(workers=workers)
    try:
        open_loop = generate_overload_schedule(
            overload_mix(),
            max(jobs, 200),
            capacity_jobs_per_s=burst_rate,
            overload_factor=1.0,
            seed=seed,
        )
        report = run_server_traffic(
            open_loop, server=server, check_oracle=False, result_timeout=600.0
        )
    finally:
        server.close()
    return report.completed / report.wall_s


def run_row(
    *,
    hardened: bool,
    factor: float,
    capacity: float,
    jobs: int,
    workers: int,
    seed: int,
    policy: SLOPolicy,
    wait_budget_s: float,
) -> dict:
    # Scale the arrival count with the factor so every row offers load over
    # the *same* time window (jobs/capacity seconds); otherwise the 2x row
    # would simply end twice as fast and its goodput would not be
    # comparable to the 1x row's.
    schedule = generate_overload_schedule(
        overload_mix(),
        max(1, int(round(jobs * factor))),
        capacity_jobs_per_s=capacity,
        overload_factor=factor,
        seed=seed,
    )
    if hardened:
        # A full queue drains in queue_capacity/capacity seconds and a job
        # can additionally sit out the tick in flight, so budget/4 of
        # backlog keeps worst-case waits around half the budget.
        queue_capacity = max(8, int(capacity * wait_budget_s / 4.0))
        server = JobServer(
            workers=workers,
            queue_capacity=queue_capacity,
            aging_interval_s=wait_budget_s / 2.0,
            slo=policy,
            admission="shed",
        )
    else:
        queue_capacity = None
        server = JobServer(workers=workers, slo=policy)
    try:
        report = run_server_traffic(
            schedule, server=server, check_oracle=False, result_timeout=600.0
        )
        slo_rows = server.slo_report()
    finally:
        server.close()
    payload = report.as_dict()
    payload.pop("wait_histogram_s", None)
    payload.pop("run_histogram_s", None)
    payload.pop("per_workload", None)
    payload.pop("oracle_mismatches", None)
    return {
        "mode": "hardened" if hardened else "unbounded",
        "overload_factor": factor,
        "offered_jobs_per_s": capacity * factor,
        "queue_capacity": queue_capacity,
        "report": payload,
        "slo": slo_rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1000,
        help="arrivals in the 1x row (other rows scale with their factor)",
    )
    parser.add_argument("--workers", type=int, default=1, help="server worker threads")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--wait-budget",
        type=float,
        default=0.15,
        help="per-priority p99 wait SLO budget, seconds",
    )
    parser.add_argument("--out", default="BENCH_overload.json", help="output JSON path")
    parser.add_argument(
        "--check", action="store_true", help="fail unless the acceptance bar is met"
    )
    parser.add_argument(
        "--goodput-margin",
        type=float,
        default=0.15,
        help="allowed fractional goodput drop at 2x vs the hardened peak",
    )
    args = parser.parse_args()

    mix = overload_mix()
    priorities = sorted({entry.priority for entry in mix})
    top_priority = priorities[-1]
    policy = SLOPolicy.from_budgets({p: args.wait_budget for p in priorities})

    capacity = measure_capacity(min(args.jobs, 400), args.workers, args.seed)
    print(f"measured capacity: {capacity:.1f} jobs/s (workers={args.workers})")

    rows = []
    for hardened in (True, False):
        for factor in FACTORS:
            row = run_row(
                hardened=hardened,
                factor=factor,
                capacity=capacity,
                jobs=args.jobs,
                workers=args.workers,
                seed=args.seed,
                policy=policy,
                wait_budget_s=args.wait_budget,
            )
            rows.append(row)
            rep = row["report"]
            print(
                f"{row['mode']:<9} {factor:>4.1f}x  offered {row['offered_jobs_per_s']:7.1f}/s  "
                f"goodput {rep['goodput_jobs_per_s']:7.1f}/s  "
                f"completed {rep['completed']:>4}  shed {rep['shed']:>4}  "
                f"slo_ok {rep.get('slo_ok', rep['completed']):>4}"
            )

    def pick(mode: str, factor: float) -> dict:
        return next(
            r
            for r in rows
            if r["mode"] == mode and r["overload_factor"] == factor
        )

    hardened_goodputs = {
        r["overload_factor"]: r["report"]["goodput_jobs_per_s"]
        for r in rows
        if r["mode"] == "hardened"
    }
    peak_goodput = max(hardened_goodputs.values())
    hardened_2x = pick("hardened", 2.0)
    unbounded_2x = pick("unbounded", 2.0)
    top_p99_wait = hardened_2x["slo"][str(top_priority)]["wait_p99_s"]

    payload = {
        "seed": args.seed,
        "jobs_per_row": args.jobs,
        "workers": args.workers,
        "capacity_jobs_per_s": capacity,
        "wait_budget_s": args.wait_budget,
        "top_priority": top_priority,
        "mix": [
            {
                "workload": entry.workload,
                "weight": entry.weight,
                "priority": entry.priority,
            }
            for entry in mix
        ],
        "rows": rows,
        "summary": {
            "hardened_goodput_by_factor": hardened_goodputs,
            "hardened_peak_goodput_jobs_per_s": peak_goodput,
            "hardened_2x_goodput_jobs_per_s": hardened_2x["report"][
                "goodput_jobs_per_s"
            ],
            "unbounded_2x_goodput_jobs_per_s": unbounded_2x["report"][
                "goodput_jobs_per_s"
            ],
            "hardened_2x_top_priority_p99_wait_s": top_p99_wait,
        },
    }
    write_bench_json(args.out, payload)
    print(
        f"2x overload: hardened {hardened_2x['report']['goodput_jobs_per_s']:.1f}/s "
        f"vs unbounded {unbounded_2x['report']['goodput_jobs_per_s']:.1f}/s goodput, "
        f"top-priority p99 wait {top_p99_wait * 1000:.1f} ms "
        f"(budget {args.wait_budget * 1000:.0f} ms) -> {args.out}"
    )

    if not args.check:
        return 0
    failures = []
    rep_2x = hardened_2x["report"]
    if rep_2x["shed"] <= 0:
        failures.append("hardened 2x row shed nothing")
    if rep_2x["completed"] + rep_2x["shed"] + rep_2x["failed"] != rep_2x["jobs"]:
        failures.append(
            f"hardened 2x lost jobs: {rep_2x['completed']}+{rep_2x['shed']}"
            f"+{rep_2x['failed']} != {rep_2x['jobs']}"
        )
    floor = (1.0 - args.goodput_margin) * peak_goodput
    if rep_2x["goodput_jobs_per_s"] < floor:
        failures.append(
            f"hardened 2x goodput {rep_2x['goodput_jobs_per_s']:.1f}/s below "
            f"{floor:.1f}/s ({1 - args.goodput_margin:.0%} of peak {peak_goodput:.1f}/s)"
        )
    if top_p99_wait > args.wait_budget:
        failures.append(
            f"hardened 2x top-priority p99 wait {top_p99_wait:.3f}s exceeds "
            f"budget {args.wait_budget:.3f}s"
        )
    if rep_2x["goodput_jobs_per_s"] <= unbounded_2x["report"]["goodput_jobs_per_s"]:
        failures.append(
            "hardened 2x goodput does not beat the unbounded configuration"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
