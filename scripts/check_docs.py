#!/usr/bin/env python
"""Execute the fenced Python code blocks of the repo's Markdown docs.

``make docs-check`` runs this to guarantee README snippets never rot: every
triple-backtick ``python`` block is executed in its own subprocess with
``src/`` on the import path, and any exception fails the check.  Blocks that
are deliberately illustrative can opt out with a ``# doc-only`` marker in
their first line.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_DOCS = ["README.md"]
FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_blocks(path: str) -> list:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    blocks = []
    for match in FENCE.finditer(text):
        code = match.group(1)
        line = text[: match.start()].count("\n") + 2
        lines = code.splitlines()
        if lines and "# doc-only" in lines[0]:
            continue
        blocks.append((line, code))
    return blocks


def run_block(doc: str, line: int, code: str) -> bool:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.NamedTemporaryFile("w", suffix=".py", delete=False) as handle:
        handle.write(code)
        script = handle.name
    try:
        completed = subprocess.run(
            [sys.executable, script],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
    finally:
        os.unlink(script)
    label = f"{doc}:{line}"
    if completed.returncode != 0:
        print(f"FAIL {label}")
        sys.stdout.write(completed.stdout)
        sys.stderr.write(completed.stderr)
        return False
    print(f"ok   {label}")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("docs", nargs="*", default=DEFAULT_DOCS, help="Markdown files to check")
    args = parser.parse_args()
    failures = 0
    total = 0
    for doc in args.docs:
        path = os.path.join(REPO_ROOT, doc)
        if not os.path.exists(path):
            print(f"FAIL {doc}: file not found")
            failures += 1
            continue
        for line, code in extract_blocks(path):
            total += 1
            if not run_block(doc, line, code):
                failures += 1
    print(f"{total - failures}/{total} snippet(s) passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
