#!/usr/bin/env python
"""Workload-suite benchmark (emits BENCH_workloads.json).

Runs every default workload — the Coyote and Porcupine kernels, the tree
ensemble and the IR-lowered NN linear layer — as a batch on both the
``reference`` and ``vector-vm`` backends, down two paths that must agree
bit for bit:

* **direct**  — one ``api.execute_batch`` call per (workload, backend);
* **server**  — the same per-item seeds submitted as jobs to a
  :class:`~repro.server.server.JobServer` and drained through the
  coalescing scheduler.

A mixed-traffic pass then pushes the weighted :func:`default_mix` schedule
(priorities, per-workload compilers/backends) through the server and the
direct path, recording throughput, telemetry wait/run histograms and
coalescing rates.  ``--check`` exits non-zero unless every row is
bit-identical across paths, every verified output is correct, and the
required workload/backend coverage (>= 5 workloads x 2 backends) holds.
"""

from __future__ import annotations

import argparse
import sys

from _bench_common import write_bench_json

from repro.workloads.traffic import (
    benchmark_problems,
    benchmark_workloads,
    summarize_benchmark,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=16, help="input sets per row")
    parser.add_argument(
        "--traffic-jobs", type=int, default=60, help="jobs in the mixed-traffic pass"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrival rate in jobs/s (default: burst submission)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1, help="server worker threads")
    parser.add_argument("--out", default="BENCH_workloads.json", help="output JSON path")
    parser.add_argument(
        "--check", action="store_true", help="fail on any mismatch or coverage gap"
    )
    args = parser.parse_args()

    payload = benchmark_workloads(
        batch=args.batch,
        traffic_jobs=args.traffic_jobs,
        rate=args.rate,
        seed=args.seed,
        workers=args.workers,
    )
    payload = write_bench_json(args.out, payload)

    for line in summarize_benchmark(payload):
        print(line)
    print(f"-> {args.out}")

    if args.check:
        problems = benchmark_problems(payload)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
