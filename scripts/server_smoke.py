#!/usr/bin/env python
"""CI smoke of the job-orchestration server.

Starts a :class:`~repro.server.server.JobServer` in-process over a temporary
state directory, submits a mixed compile + execute workload (several users
requesting the same kernels, so the coalescer has something to merge), drains
it and checks the invariants CI cares about:

* every job reaches ``completed`` and every verified execution is correct;
* the telemetry snapshot reports > 0 coalesced batches and the coalesced
  batch sizes add up (one vector-VM tape pass served N queued users);
* results survive a server restart (the JSONL store replays them);
* a job submitted through the store by a "client" process is picked up.

Exits non-zero (with a one-line reason) on any violation.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.ir.printer import to_sexpr
from repro.kernels.registry import benchmark_by_name
from repro.server import Job, JobServer, JobStore

KERNELS = ("dot_product_4", "l2_distance_4", "hamming_distance_4")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="vector-vm")
    parser.add_argument("--users", type=int, default=6, help="execute jobs per kernel")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-server-smoke-") as state_dir:
        server = JobServer(state_dir, backend=args.backend, workers=args.workers)
        sources = {name: to_sexpr(benchmark_by_name(name).expression()) for name in KERNELS}

        execute_ids = []
        for name, source in sources.items():
            for user in range(args.users):
                execute_ids.append(
                    server.submit(Job(source=source, seed=user, name=f"{name}/u{user}"))
                )
        compile_ids = [
            server.submit(Job(source=source, kind="compile", name=name))
            for name, source in sources.items()
        ]
        # A "client" submission through the store rather than the object.
        client_job = Job(source="(+ (* a b) c)", inputs={"a": 2, "b": 3, "c": 4})
        JobStore(state_dir).append(client_job)

        processed = server.drain()
        expected = len(execute_ids) + len(compile_ids) + 1
        if processed != expected:
            print(f"FAIL: drained {processed} jobs, expected {expected}", file=sys.stderr)
            return 1

        for job_id in execute_ids + [client_job.id]:
            payload = server.result(job_id)
            if not payload.get("correct", False):
                print(f"FAIL: job {job_id} not verified correct: {payload}", file=sys.stderr)
                return 1
        for job_id in compile_ids:
            if "final_cost" not in server.result(job_id):
                print(f"FAIL: compile job {job_id} missing final_cost", file=sys.stderr)
                return 1

        snapshot = server.telemetry.snapshot()
        counters = snapshot["counters"]
        coalesced_batches = counters.get("batches_coalesced", 0)
        coalesced_jobs = counters.get("coalesced_jobs", 0)
        if coalesced_batches <= 0:
            print("FAIL: telemetry reports no coalesced batches", file=sys.stderr)
            return 1
        if coalesced_jobs < len(KERNELS) * args.users:
            print(
                f"FAIL: only {coalesced_jobs} jobs coalesced, expected >= "
                f"{len(KERNELS) * args.users}",
                file=sys.stderr,
            )
            return 1
        if counters.get("jobs_failed", 0) != 0:
            print("FAIL: some jobs failed", file=sys.stderr)
            return 1
        server.close()

        # Restart: the store replays every terminal job.
        reborn = JobServer(state_dir)
        replayed = [row["status"] for row in reborn.jobs()]
        if len(replayed) != expected or set(replayed) != {"completed"}:
            print(f"FAIL: replay after restart saw {replayed}", file=sys.stderr)
            return 1

        print(
            f"jobs={expected} coalesced_batches={int(coalesced_batches)} "
            f"coalesced_jobs={int(coalesced_jobs)} backend={args.backend} "
            f"workers={args.workers}"
        )
        print("server smoke OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
