#!/usr/bin/env python
"""CI smoke: the static-analysis stack end to end.

Exercises every layer the ``repro.analysis`` package ships:

* ``repro lint`` semantics over the installed package — the concurrency /
  determinism / hygiene lint must come back with zero findings;
* ``repro analyze`` semantics on two representative workloads (a
  rotation-heavy reduction and a fusion-heavy kernel), both compilers,
  pipeline validators plus the full tape verifier — zero findings;
* the seeded mutation harness on one workload: every injected defect
  (operand swap, dropped reduction, extended lifetime, illegal fusion)
  must be detected, proving the verifier is load-bearing rather than
  vacuously green.

Exits non-zero (with a one-line reason) on any violation.
"""

from __future__ import annotations

import os
import sys

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro import api
from repro.analysis.mutate import run_mutation_harness
from repro.backends.tapeopt import compile_tape
from repro.fhe.params import BFVParameters
from repro.workloads import build_workload

WORKLOADS = ("dot-product", "l2-distance")
COMPILERS = ("greedy", "coyote")


def fail(reason: str) -> None:
    print(f"FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    # 1. codebase lint
    report, files_checked = api.lint()
    if files_checked <= 0:
        fail("lint walked zero files")
    if not report.ok:
        fail(
            f"lint found {report.errors} error(s): "
            + "; ".join(f.render() for f in report.findings[:3])
        )
    print(f"lint: clean across {files_checked} files")

    # 2. analyze two workloads under both compilers
    for workload_name in WORKLOADS:
        workload = build_workload(workload_name)
        for compiler in COMPILERS:
            _, analysis = api.analyze(
                workload.source, compiler, name=workload.name
            )
            if not analysis.ok or analysis.findings:
                fail(
                    f"{workload_name}/{compiler}: "
                    + "; ".join(f.render() for f in analysis.findings[:3])
                )
            print(
                f"analyze: {workload_name}/{compiler} clean "
                f"({len(analysis.checkers_run)} checkers)"
            )

    # 3. mutation harness: every injected defect must be caught.  The case
    # mix guarantees every class has a site: l2-distance (ordered subs),
    # tree-ensemble (scheduled reduces at the large bucket), and a
    # shared-product kernel (multi-consumer multiply for illegal fusion,
    # overlapping lifetimes for the clobber mutant).
    params = BFVParameters.default(1024)
    cases = []
    sources = [
        build_workload("l2-distance").source,
        build_workload("tree-ensemble").source,
        "(+ (+ (* a b) c) (* (* a b) d))",
    ]
    for source in sources:
        compiled = api.compile(source, "greedy")
        cases.append((compiled.circuit, compile_tape(compiled.circuit, params)))
    result = run_mutation_harness(cases, seed=7, per_class=2)
    for line in result.summary_lines():
        print(f"mutations: {line}")
    if len(result.classes_exercised) < 4:
        fail(
            "mutation harness exercised only "
            + ", ".join(result.classes_exercised)
        )
    if not result.all_detected:
        fail("mutation harness: an injected defect went undetected")

    print("analysis smoke OK")


if __name__ == "__main__":
    main()
