#!/usr/bin/env python
"""Throughput benchmark of the orchestration server (emits BENCH_server.json).

Measures the headline win of the batch-coalescing scheduler: N queued users
asking for the same circuits are served in single vector-VM batches (one
tape pass per circuit) instead of N separate executions.  Three ways of
running the *same* workload — ``--users`` input sets for each kernel — are
timed end to end:

* ``server_coalesced``      — submit everything to a :class:`JobServer`
  (vector-vm backend) and drain: the coalescer groups per circuit;
* ``api_execute_reference`` — the one-at-a-time reference path: each job is
  a separate ``repro.api.execute`` call on the default reference backend;
* ``api_execute_vector_vm`` — one-at-a-time on the vector VM (isolates the
  coalescing win from the backend win).

Compilation is warmed up outside the timed windows for every path, and each
path verifies outputs against the plaintext reference (the server does so
internally).  ``--check`` exits non-zero when the coalesced server fails to
beat the one-at-a-time reference path by ``--min-speedup`` (the acceptance
bar is 3x).

A final *untimed* pass repeats the server workload with tracing enabled and
rolls the spans up into ``stage_breakdown`` — per-stage self time over the
traced window (see ``repro trace report``).  The tracing overhead stays out
of every timed row; ``--check`` also requires the named stages to attribute
at least ``--min-coverage`` (default 95%) of the traced server-path wall.
"""

from __future__ import annotations

import argparse
import sys
import time

from _bench_common import write_bench_json

from repro import api
from repro.ir.printer import to_sexpr
from repro.kernels.registry import benchmark_by_name
from repro.server import Job, JobServer

KERNELS = ("dot_product_8", "matrix_multiply_3x3", "box_blur_3x3", "sort_3")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=32, help="jobs per kernel")
    parser.add_argument(
        "--compiler",
        default="initial",
        help="compiler producing the circuits (matches bench_backends.py)",
    )
    parser.add_argument("--workers", type=int, default=1, help="server worker threads")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument("--out", default="BENCH_server.json", help="output JSON path")
    parser.add_argument(
        "--check", action="store_true", help="fail unless the speedup bar is met"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required coalesced-server speedup over one-at-a-time api.execute",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=0.95,
        help="required fraction of traced server wall attributed to named stages",
    )
    args = parser.parse_args()

    benchmarks = [benchmark_by_name(name) for name in KERNELS]
    sources = {b.name: to_sexpr(b.expression()) for b in benchmarks}
    #: Pre-compiled reports shared by both one-at-a-time paths, so their
    #: timed loops measure execution + verification only.
    reports = {
        b.name: api.compile(sources[b.name], args.compiler, name=b.name)
        for b in benchmarks
    }
    total_jobs = len(benchmarks) * args.users

    def server_pass() -> float:
        server = JobServer(
            backend="vector-vm", compiler=args.compiler, workers=args.workers
        )
        # Warm the compilation cache (the one-at-a-time paths get precompiled
        # reports, so compilation stays outside every timed window).
        for benchmark in benchmarks:
            server.submit(Job(source=sources[benchmark.name], seed=10_000))
        server.drain()
        start = time.perf_counter()
        job_ids = []
        for benchmark in benchmarks:
            for user in range(args.users):
                job_ids.append(
                    server.submit(Job(source=sources[benchmark.name], seed=user))
                )
        server.drain()
        wall = time.perf_counter() - start
        for job_id in job_ids:
            payload = server.result(job_id)
            if not payload.get("correct", False):
                raise SystemExit(f"FAIL: server job {job_id} incorrect: {payload}")
        counters = server.telemetry.snapshot()["counters"]
        if counters.get("batches_coalesced", 0) <= 0:
            raise SystemExit("FAIL: server pass coalesced nothing")
        server_pass.telemetry = counters
        return wall

    def one_at_a_time(backend: str) -> float:
        start = time.perf_counter()
        for benchmark in benchmarks:
            for user in range(args.users):
                outcome = api.execute(
                    reports[benchmark.name], seed=user, backend=backend
                )
                if not outcome.correct:
                    raise SystemExit(
                        f"FAIL: {benchmark.name} incorrect one-at-a-time on {backend}"
                    )
        return time.perf_counter() - start

    def traced_breakdown() -> dict:
        """One untimed traced server pass -> the per-stage rollup."""
        from repro.obs.export import stage_rollup

        server = JobServer(
            backend="vector-vm",
            compiler=args.compiler,
            workers=args.workers,
            tracing=True,
        )
        try:
            for benchmark in benchmarks:
                server.submit(Job(source=sources[benchmark.name], seed=10_000))
            server.drain()
            # Drop the warmup spans so the rollup window is exactly the
            # submit-everything-and-drain section the timed pass measures.
            server.tracer.clear()
            start = time.perf_counter()
            for benchmark in benchmarks:
                for user in range(args.users):
                    server.submit(Job(source=sources[benchmark.name], seed=user))
            server.drain()
            wall = time.perf_counter() - start
            rollup = stage_rollup(server.tracer.spans(), window_s=wall)
        finally:
            server.close()
        rollup["wall_s"] = wall
        return rollup

    walls = {"server_coalesced": min(server_pass() for _ in range(args.repeats))}
    walls["api_execute_reference"] = min(
        one_at_a_time("reference") for _ in range(args.repeats)
    )
    walls["api_execute_vector_vm"] = min(
        one_at_a_time("vector-vm") for _ in range(args.repeats)
    )

    breakdown = traced_breakdown()

    speedup_reference = walls["api_execute_reference"] / walls["server_coalesced"]
    speedup_uncoalesced = walls["api_execute_vector_vm"] / walls["server_coalesced"]
    payload = {
        "kernels": list(KERNELS),
        "users_per_kernel": args.users,
        "jobs": total_jobs,
        "workers": args.workers,
        "repeats": args.repeats,
        "backend": "vector-vm",
        "wall_s": walls,
        "throughput_jobs_per_s": {
            name: total_jobs / wall for name, wall in walls.items()
        },
        "speedup_vs_reference_one_at_a_time": speedup_reference,
        "speedup_vs_vector_vm_one_at_a_time": speedup_uncoalesced,
        "server_telemetry": server_pass.telemetry,
        "stage_breakdown": breakdown,
    }
    write_bench_json(args.out, payload)

    for name, wall in walls.items():
        print(f"{name:26s} {wall:8.3f} s   {total_jobs / wall:8.1f} jobs/s")
    print(
        f"coalesced server speedup: {speedup_reference:.1f}x vs one-at-a-time "
        f"reference, {speedup_uncoalesced:.1f}x vs one-at-a-time vector-vm "
        f"({total_jobs} jobs) -> {args.out}"
    )
    print(
        "stage breakdown (traced pass, {wall:.3f} s): ".format(
            wall=breakdown["wall_s"]
        )
        + ", ".join(
            f"{row['stage']} {row['self_s'] * 1000.0:.1f}ms"
            for row in breakdown["stages"]
        )
    )
    print(f"stage coverage: {breakdown['coverage']:.1%} of traced server wall")

    failed = False
    if args.check and speedup_reference < args.min_speedup:
        print(
            f"FAIL: coalesced server speedup {speedup_reference:.2f}x is below "
            f"the required {args.min_speedup}x",
            file=sys.stderr,
        )
        failed = True
    if args.check and breakdown["coverage"] < args.min_coverage:
        print(
            f"FAIL: stage breakdown attributes {breakdown['coverage']:.1%} of the "
            f"traced server wall, below the required {args.min_coverage:.0%}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
