#!/usr/bin/env python
"""System-ablation study benchmark (emits BENCH_ablation.json).

Runs the default study matrix through :func:`repro.api.run_study`: one
baseline condition with every system component on, plus one condition per
component with exactly that component off — the optimizing compiler, the
batched vector backend, the fingerprint coalescer, the compilation-cache
tier (LRU + circuit memo) and the timer-augmented scheduler — times
``--replicates`` independently seeded replicates each, every replicate a
fresh :class:`~repro.server.server.JobServer` driving ``--jobs`` workload
jobs end to end.  The committed artifact records per-condition metric
summaries and the per-component importance ranking (relative loss of the
primary metric when the component is removed) with bootstrap confidence
intervals.

The study directory defaults to a throwaway temp dir; pass ``--study-dir``
to keep the per-run state around, kill the script mid-study, and finish it
with ``python -m repro study resume --study-dir <dir>``.

``--check`` enforces the acceptance bar: the study completed, the baseline
row exists, every component row carries at least ``--min-replicates``
replicates, and every ranking entry has a confidence interval.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from _bench_common import write_bench_json

from repro import api


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--study-dir",
        default=None,
        help="persistent study directory (default: a throwaway temp dir)",
    )
    parser.add_argument(
        "--components",
        default=None,
        help="comma-separated components (default: the default matrix)",
    )
    parser.add_argument(
        "--workloads",
        default="dot-product,max-tree",
        help="comma-separated workload registry names",
    )
    parser.add_argument("--replicates", type=int, default=3, help="runs per condition")
    parser.add_argument("--jobs", type=int, default=10, help="jobs per replicate")
    parser.add_argument("--seed", type=int, default=0, help="study root seed")
    parser.add_argument("--workers", type=int, default=2, help="server workers per run")
    parser.add_argument(
        "--resamples", type=int, default=2000, help="bootstrap resamples for the CIs"
    )
    parser.add_argument("--out", default="BENCH_ablation.json", help="output JSON path")
    parser.add_argument(
        "--check", action="store_true", help="fail unless the acceptance bar is met"
    )
    parser.add_argument(
        "--min-replicates",
        type=int,
        default=3,
        help="required replicates per condition under --check",
    )
    args = parser.parse_args()

    components = (
        [part.strip() for part in args.components.split(",") if part.strip()]
        if args.components
        else None
    )
    workloads = [part.strip() for part in args.workloads.split(",") if part.strip()]

    def progress(run, record):
        metrics = record.get("metrics", {})
        print(
            f"  ran {run.run_id:<28} throughput="
            f"{metrics.get('throughput_jobs_per_s', 0.0):8.2f} jobs/s"
        )

    def execute(study_dir: str):
        return api.run_study(
            study_dir,
            components=components,
            workloads=workloads,
            replicates=args.replicates,
            jobs_per_replicate=args.jobs,
            seed=args.seed,
            workers=args.workers,
            resamples=args.resamples,
            progress=progress,
        )

    if args.study_dir is not None:
        report = execute(args.study_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="bench_ablation_") as study_dir:
            report = execute(study_dir)
        report["study_dir"] = None  # the temp dir is gone; don't point at it

    write_bench_json(args.out, report)

    primary = report["primary_metric"]
    for summary in report["conditions"]:
        stats = summary["metrics"].get(primary, {})
        print(
            f"{summary['condition']:<20} {primary} = {stats.get('mean', 0.0):9.3f}"
            f" ± {stats.get('std', 0.0):7.3f}  (n={stats.get('n', 0)})"
        )
    for row in report["ranking"]:
        print(
            f"#{row['rank']} {row['component']:<20} importance {row['importance']:+.3f}"
            f"  CI [{row['ci_low']:+.3f}, {row['ci_high']:+.3f}]"
        )
    print(f"-> {args.out}")

    if not args.check:
        return 0
    failures = []
    if not report["progress"]["complete"]:
        failures.append("study did not complete")
    baseline = next(
        (c for c in report["conditions"] if c["condition"] == "baseline"), None
    )
    if baseline is None:
        failures.append("no baseline row")
    else:
        n = baseline["metrics"].get(primary, {}).get("n", 0)
        if n < args.min_replicates:
            failures.append(f"baseline has {n} replicate(s) < {args.min_replicates}")
    if not report["ranking"]:
        failures.append("empty importance ranking")
    for row in report["ranking"]:
        if row["ablated_replicates"] < args.min_replicates:
            failures.append(
                f"{row['component']} has {row['ablated_replicates']} replicate(s) "
                f"< {args.min_replicates}"
            )
        if "ci_low" not in row or "ci_high" not in row:
            failures.append(f"{row['component']} ranking row lacks a CI")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
