"""Shared plumbing for the ``scripts/bench_*.py`` report emitters.

Every bench script needs the same three things: ``repro`` importable from a
bare checkout (no ``PYTHONPATH=src``), a stamped environment block so a
committed ``BENCH_*.json`` records what produced it, and the one true way
of writing the artifact (sorted keys, two-space indent, trailing newline —
so regenerated artifacts diff cleanly).  Importing this module performs the
path fix-up as a side effect; scripts then call :func:`write_bench_json`
instead of hand-rolling ``json.dump``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict


def _ensure_repro_importable() -> None:
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:  # running from a checkout without PYTHONPATH=src
        sys.path.insert(
            0,
            os.path.join(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
            ),
        )


_ensure_repro_importable()


def bench_environment() -> Dict[str, object]:
    """What produced this artifact: package version, python, platform."""
    import repro

    return {
        "version": repro.__version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def write_bench_json(path: str, payload: Dict[str, object]) -> Dict[str, object]:
    """Stamp ``payload`` and write it to ``path`` in the canonical format.

    Adds ``version``, ``environment`` and ``generated_unix`` unless the
    script already set them, and returns the stamped payload.
    """
    import repro

    payload = dict(payload)
    payload.setdefault("version", repro.__version__)
    payload.setdefault("environment", bench_environment())
    payload.setdefault("generated_unix", round(time.time(), 3))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
