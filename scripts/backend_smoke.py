#!/usr/bin/env python
"""CI smoke: run the same circuit on all three execution backends and diff.

Compiles a handful of kernels, executes each on ``reference``, ``vector-vm``
and ``cost-sim`` and checks the backend-parity invariants CI cares about:

* vector-vm outputs are bit-identical to reference outputs (single and
  batched execution);
* all three backends report identical latency, operation counts and noise
  accounting;
* cost-sim produces accounting but no outputs;
* the tape optimizer actually engages: fused-superinstruction count > 0 on
  a rotation-heavy kernel, and the process-wide compiled-tape memo hits on
  the second execution of the same circuit.

Exits non-zero (with a one-line reason) on any violation.
"""

from __future__ import annotations

import argparse
import os
import sys

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.backends.tapeopt import get_compiled_tape, reset_tape_cache, tape_cache_stats
from repro.compiler import build_compiler, execute, execute_many
from repro.fhe.params import BFVParameters
from repro.kernels.registry import benchmark_by_name

KERNELS = ("dot_product_8", "matrix_multiply_3x3", "box_blur_3x3", "sort_3")
#: Rotation-heavy kernel on which peephole fusion must demonstrably engage.
FUSION_KERNEL = "dot_product_8"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", default="greedy")
    parser.add_argument("--degree", type=int, default=4096)
    parser.add_argument("--batch", type=int, default=8)
    args = parser.parse_args()

    params = BFVParameters.default(args.degree)
    compiler = build_compiler(args.compiler)
    reset_tape_cache()
    for name in KERNELS:
        benchmark = benchmark_by_name(name)
        circuit = compiler.compile_expression(benchmark.expression(), name=name).circuit
        inputs = [benchmark.sample_inputs(seed=seed) for seed in range(args.batch)]

        reference = [execute(circuit, item, params=params, backend="reference") for item in inputs]
        vm = execute_many(circuit, inputs, params=params, backend="vector-vm")
        sim = execute(circuit, inputs[0], params=params, backend="cost-sim")

        if name == FUSION_KERNEL:
            stats = get_compiled_tape(circuit, params).stats
            if int(stats["fused_total"]) <= 0:
                print(
                    f"FAIL: tape optimizer fused nothing on rotation-heavy "
                    f"{name} (stats: {stats})",
                    file=sys.stderr,
                )
                return 1
            hits_before = tape_cache_stats()["hits"]
            execute_many(circuit, inputs, params=params, backend="vector-vm")
            hits_after = tape_cache_stats()["hits"]
            if hits_after <= hits_before:
                print(
                    f"FAIL: second execution of {name} did not hit the "
                    f"compiled-tape memo ({tape_cache_stats()})",
                    file=sys.stderr,
                )
                return 1

        for index, (ref, batched) in enumerate(zip(reference, vm)):
            if ref.outputs != batched.outputs:
                print(
                    f"FAIL: {name}[{index}] outputs differ: reference {ref.outputs} "
                    f"vs vector-vm {batched.outputs}",
                    file=sys.stderr,
                )
                return 1
        head = reference[0]
        for label, other in (("vector-vm", vm[0]), ("cost-sim", sim)):
            for metric in (
                "latency_ms",
                "operation_counts",
                "consumed_noise_budget",
                "remaining_noise_budget",
                "noise_budget_exhausted",
                "encrypted_inputs",
            ):
                if getattr(head, metric) != getattr(other, metric):
                    print(
                        f"FAIL: {name} {label} {metric} diverges: "
                        f"{getattr(head, metric)!r} vs {getattr(other, metric)!r}",
                        file=sys.stderr,
                    )
                    return 1
        if sim.outputs != {}:
            print("FAIL: cost-sim produced outputs", file=sys.stderr)
            return 1
        print(
            f"{name:20s} OK  ({args.batch} input sets, "
            f"{head.latency_ms:.1f} ms simulated, "
            f"{head.consumed_noise_budget:.1f} bits consumed)"
        )
    cache = tape_cache_stats()
    print(
        f"backend smoke OK (tape memo: {cache['compiles']} compiles, "
        f"{cache['hits']} hits)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
