#!/usr/bin/env python
"""CI smoke of the end-to-end tracing pipeline.

Runs a mixed-traffic burst (several users per kernel, plus compile jobs and a
retried failure) through a traced :class:`~repro.server.server.JobServer`
over a temporary state directory, then checks the observability invariants
CI cares about:

* every lifecycle stage shows up in the span stream (submit, persist,
  queue_wait, coalesce, schedule, backend_compile, execute, commit_result);
* every submitted job has one connected trace — a single root span with
  every other span of the trace parented on it — including the retried job;
* the Chrome trace export is loadable (valid JSON, ``traceEvents`` complete
  events with µs timestamps) and ``repro trace report`` prints a non-empty
  stage table;
* the metrics snapshot carries the ``meta`` block (sequence, wall +
  monotonic timestamps) and per-stage histograms for ``repro top``.

Exits non-zero (with a one-line reason) on any violation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.ir.printer import to_sexpr
from repro.kernels.registry import benchmark_by_name
from repro.obs.export import export_chrome_trace, render_stage_report, stage_rollup
from repro.obs.trace import load_spans
from repro.server import Job, JobServer

KERNELS = ("dot_product_4", "l2_distance_4")

#: Stages the server path must attribute time to on a mixed burst.
REQUIRED_STAGES = (
    "submit",
    "persist",
    "coalesce",
    "schedule",
    "backend_compile",
    "execute",
    "commit_result",
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=5, help="execute jobs per kernel")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as state_dir:
        server = JobServer(state_dir, backend="vector-vm", workers=args.workers, tracing=True)
        sources = {name: to_sexpr(benchmark_by_name(name).expression()) for name in KERNELS}

        jobs = []
        for name, source in sources.items():
            for user in range(args.users):
                job = Job(source=source, seed=user, name=f"{name}/u{user}")
                jobs.append(job)
                server.submit(job)
            compile_job = Job(source=source, kind="compile", name=name)
            jobs.append(compile_job)
            server.submit(compile_job)
        # A retried failure: the trace must stay connected across attempts.
        retried = Job(source="(+ broken", max_retries=2, name="retried")
        jobs.append(retried)
        server.submit(retried)

        server.drain()
        server.close()

        trace_path = server.store.trace_path
        if not os.path.exists(trace_path):
            print(f"FAIL: no trace written at {trace_path}", file=sys.stderr)
            return 1
        spans = load_spans(trace_path)
        if not spans:
            print(f"FAIL: trace at {trace_path} holds no spans", file=sys.stderr)
            return 1

        names = {span.name for span in spans}
        missing = [stage for stage in REQUIRED_STAGES if stage not in names]
        if missing:
            print(f"FAIL: lifecycle stages missing from trace: {missing}", file=sys.stderr)
            return 1
        if "queue_wait" not in names:
            print("FAIL: no queue_wait spans on the job traces", file=sys.stderr)
            return 1

        # One connected trace per submission: a single root (the job
        # envelope, pinned to the persisted trace_root) and every other
        # span of that trace parented on it.
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        for job in jobs:
            tree = by_trace.get(job.trace_id)
            if not tree:
                print(f"FAIL: job {job.id} left no spans", file=sys.stderr)
                return 1
            roots = [span for span in tree if span.parent_id is None]
            if len(roots) != 1 or roots[0].span_id != job.trace_root:
                print(
                    f"FAIL: job {job.id} trace is not a single tree rooted at "
                    f"trace_root ({len(roots)} roots)",
                    file=sys.stderr,
                )
                return 1
            ids = {span.span_id for span in tree}
            dangling = [
                span.name
                for span in tree
                if span.parent_id is not None and span.parent_id not in ids
            ]
            if dangling:
                print(f"FAIL: job {job.id} has dangling spans: {dangling}", file=sys.stderr)
                return 1
        retried_runs = [
            span for span in by_trace[retried.trace_id] if span.name == "run"
        ]
        if len(retried_runs) != 3:  # two retries + the final failing attempt
            print(
                f"FAIL: retried job recorded {len(retried_runs)} run spans, expected 3",
                file=sys.stderr,
            )
            return 1

        # Perfetto-loadable export: complete events with µs timestamps.
        export_path = os.path.join(state_dir, "trace.json")
        events = export_chrome_trace(spans, export_path)
        with open(export_path, "r", encoding="utf-8") as handle:
            exported = json.load(handle)
        complete = [e for e in exported.get("traceEvents", []) if e.get("ph") == "X"]
        if events != len(spans) or len(complete) != len(spans):
            print(
                f"FAIL: export has {len(complete)} complete events for "
                f"{len(spans)} spans",
                file=sys.stderr,
            )
            return 1
        if any("ts" not in e or "dur" not in e or "name" not in e for e in complete):
            print("FAIL: exported events missing ts/dur/name", file=sys.stderr)
            return 1

        # The report must be non-empty and attribute every required stage.
        rollup = stage_rollup(spans)
        report = render_stage_report(rollup)
        reported = {row["stage"] for row in rollup["stages"]}
        if not rollup["stages"] or not report.strip():
            print("FAIL: empty stage report", file=sys.stderr)
            return 1
        missing = [stage for stage in REQUIRED_STAGES if stage not in reported]
        if missing:
            print(f"FAIL: stage report missing {missing}", file=sys.stderr)
            return 1

        # Snapshot meta + per-stage histograms feed `repro top`.
        with open(server.store.metrics_path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        meta = snapshot.get("meta", {})
        if meta.get("sequence", 0) < 1 or "wall_time" not in meta or "monotonic_time" not in meta:
            print(f"FAIL: snapshot meta incomplete: {meta}", file=sys.stderr)
            return 1
        histograms = snapshot.get("histograms", {})
        if not any(name.startswith("stage_") for name in histograms):
            print("FAIL: no stage_* histograms in the metrics snapshot", file=sys.stderr)
            return 1

        print(report)
        print(
            f"spans={len(spans)} traces={len(by_trace)} events={events} "
            f"coverage={rollup['coverage']:.1%}"
        )
        print("trace smoke OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
