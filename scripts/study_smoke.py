#!/usr/bin/env python
"""CI smoke of the study engine's resume contract.

Runs a tiny two-component, two-replicate ablation study through
persistent-state-dir job servers, interrupts it after half the matrix
(``max_runs`` stands in for a mid-study kill — the study log is in exactly
the state a SIGKILL between replicates leaves it in), then resumes from the
directory alone and checks the invariants CI cares about:

* the resumed study *skips* every recorded replicate — nothing finished is
  re-executed, and the surviving records are byte-identical to what the
  first (interrupted) invocation persisted;
* the resumed study finishes the remainder: every (condition, replicate)
  cell of the matrix ends up recorded exactly once;
* replicate seeds are pairwise distinct across the whole matrix (the
  ``SeedSequence.spawn`` independence contract);
* the final report carries a baseline row, one row per component, and a
  bootstrap confidence interval on every ranking entry.

Exits non-zero (with a one-line reason) on any violation.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro import api
from repro.studies import StudyRunner, StudySpec, generate_runs
from repro.studies.spec import RunConfig

COMPONENTS = ("coalescing", "compile-cache")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replicates", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=4, help="jobs per replicate")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    spec = StudySpec(
        name="study-smoke",
        components=COMPONENTS,
        workloads=("dot-product",),
        replicates=args.replicates,
        jobs_per_replicate=args.jobs,
        seed=args.seed,
        base_config=RunConfig(workers=2),
    )
    matrix = generate_runs(spec)
    seeds = [run.seed for run in matrix]
    if len(set(seeds)) != len(seeds):
        print("FAIL: replicate seeds are not pairwise distinct", file=sys.stderr)
        return 1

    interrupt_after = len(matrix) // 2
    with tempfile.TemporaryDirectory(prefix="repro-study-smoke-") as study_dir:
        first = StudyRunner(spec, study_dir).run(max_runs=interrupt_after)
        if len(first.executed) != interrupt_after or not first.remaining:
            print(
                f"FAIL: interrupted run executed {len(first.executed)} of "
                f"{interrupt_after} and left {len(first.remaining)} pending",
                file=sys.stderr,
            )
            return 1
        log_path = os.path.join(study_dir, "study.jsonl")
        with open(log_path, "r", encoding="utf-8") as handle:
            persisted = handle.read()

        # Resume from the directory alone, the way `study resume` does.
        report = api.run_study(study_dir, resume=True, resamples=200)

        progress = report["progress"]
        if not progress["complete"]:
            print(f"FAIL: resume left {progress['remaining']} pending", file=sys.stderr)
            return 1
        if sorted(progress["skipped"]) != sorted(first.executed):
            print(
                f"FAIL: resume skipped {progress['skipped']} but the first pass "
                f"recorded {first.executed} — finished replicates were re-run",
                file=sys.stderr,
            )
            return 1
        with open(log_path, "r", encoding="utf-8") as handle:
            resumed = handle.read()
        if not resumed.startswith(persisted):
            print(
                "FAIL: resume rewrote records persisted before the interrupt",
                file=sys.stderr,
            )
            return 1

        records = StudyRunner(spec, study_dir).load_records()
        run_ids = [r["run_id"] for r in records if r.get("type") == "run"]
        expected = [run.run_id for run in matrix]
        if sorted(run_ids) != sorted(expected) or len(run_ids) != len(set(run_ids)):
            print(
                f"FAIL: recorded matrix {sorted(run_ids)} != expected "
                f"{sorted(expected)}",
                file=sys.stderr,
            )
            return 1

    conditions = {c["condition"] for c in report["conditions"]}
    if "baseline" not in conditions or not conditions.issuperset(COMPONENTS):
        print(f"FAIL: report conditions incomplete: {sorted(conditions)}", file=sys.stderr)
        return 1
    if len(report["ranking"]) != len(COMPONENTS):
        print(f"FAIL: expected {len(COMPONENTS)} ranking rows", file=sys.stderr)
        return 1
    for row in report["ranking"]:
        if row["ablated_replicates"] != args.replicates:
            print(
                f"FAIL: {row['component']} recorded {row['ablated_replicates']} "
                f"replicate(s), wanted {args.replicates}",
                file=sys.stderr,
            )
            return 1
        if not (row["ci_low"] <= row["importance"] <= row["ci_high"]):
            print(
                f"FAIL: {row['component']} importance {row['importance']} outside "
                f"its CI [{row['ci_low']}, {row['ci_high']}]",
                file=sys.stderr,
            )
            return 1

    top = report["ranking"][0]
    print(
        f"study smoke OK: {len(matrix)} runs ({interrupt_after} before the "
        f"interrupt, {len(progress['executed'])} after), "
        f"top component {top['component']} at importance {top['importance']:+.3f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
